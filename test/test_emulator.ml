(* Edge-case tests for the SIMT-stack warp emulator: calls under divergence,
   loops with divergent trip counts, critical sections spanning calls, the
   lock-reconvergence path, and exact issue accounting on hand-computed
   scenarios. *)

open Threadfuser_isa
open Threadfuser_prog
open Threadfuser
module Machine = Threadfuser_machine.Machine
module Thread_trace = Threadfuser_trace.Thread_trace

let analyze ?(warp_size = 4) ?(sync = Emulator.Serialize) ?config funcs ~args =
  let prog = Program.assemble funcs in
  let m = Machine.create ?config prog in
  let r = Machine.run_workers m ~worker:"worker" ~args in
  ( Analyzer.analyze
      ~options:{ Analyzer.default_options with warp_size; sync }
      prog r.Machine.traces,
    r )

(* -- calls inside divergent regions --------------------------------------- *)

let test_call_under_divergence () =
  (* only odd lanes call the helper; the helper must execute with the
     divergent submask, and everyone reconverges after the diamond *)
  let funcs =
    [
      Build.(func "helper" [ mov (reg 2) (imm 1); mov (reg 2) (imm 2); ret ]);
      Build.(
        func "worker"
          [
            mov (reg 1) (reg 0);
            and_ (reg 1) (imm 1);
            if_ Cond.Eq (reg 1) (imm 1) ~then_:[ call "helper" ] ();
            mov (reg 3) (imm 9);
            ret;
          ]);
    ]
  in
  let r, _ = analyze funcs ~args:(Array.init 4 (fun i -> [ i ])) in
  let rep = r.Analyzer.report in
  (* blocks: entry [mov;and;cmp;jcc]=4 | then [call]=1 | helper [mov;mov;ret]=3
     | join [mov;ret]=2.
     issues: 4 (all) + 1 (odd) + 3 (odd, inside helper) + 2 (all) = 10
     thread instrs: 4*4 + 2*1 + 2*3 + 4*2 = 4+16... = 16 + 2 + 6 + 8 = 32 *)
  Alcotest.(check int) "issues" 10 rep.Metrics.issues;
  Alcotest.(check int) "thread instrs" 32 rep.Metrics.thread_instrs;
  (* per-function: helper gets 3 issues, 6 instrs *)
  let helper =
    List.find (fun (f : Metrics.func_stat) -> f.Metrics.func_name = "helper")
      rep.Metrics.per_function
  in
  Alcotest.(check int) "helper issues" 3 helper.Metrics.issues;
  Alcotest.(check int) "helper instrs" 6 helper.Metrics.thread_instrs;
  Alcotest.(check (float 1e-9)) "helper efficiency" 0.5 helper.Metrics.efficiency

let test_nested_calls () =
  let funcs =
    [
      Build.(func "inner" [ add (reg 2) (imm 1); ret ]);
      Build.(func "outer" [ call "inner"; call "inner"; ret ]);
      Build.(func "worker" [ call "outer"; ret ]);
    ]
  in
  let r, _ = analyze funcs ~args:(Array.make 4 []) in
  Alcotest.(check (float 1e-9)) "uniform nested calls" 1.0
    r.Analyzer.report.Metrics.simt_efficiency

let test_recursion () =
  (* recursive countdown: depth differs per lane -> divergence at the base
     case, but every trace must be consumed exactly *)
  let funcs =
    [
      Build.(
        func "countdown"
          [
            if_ Cond.Gt (reg 0) (imm 0)
              ~then_:[ sub (reg 0) (imm 1); call "countdown" ]
              ();
            ret;
          ]);
      Build.(func "worker" [ call "countdown"; ret ]);
    ]
  in
  let r, run = analyze funcs ~args:(Array.init 4 (fun i -> [ i ])) in
  let traced =
    Array.fold_left
      (fun acc t -> acc + (Thread_trace.stats t).Thread_trace.traced_instrs)
      0 run.Machine.traces
  in
  Alcotest.(check int) "conservation under recursion" traced
    r.Analyzer.report.Metrics.thread_instrs;
  Alcotest.(check bool) "divergent" true
    (r.Analyzer.report.Metrics.simt_efficiency < 1.0)

(* -- divergent loop trip counts ------------------------------------------- *)

let test_loop_tail_divergence_exact () =
  (* lane i iterates i+1 times; loop head [cmp;jcc]=2, body [add;add;jmp]=3,
     prologue [mov]=1, epilogue [ret]=1.
     4 lanes, trip counts 1,2,3,4.
     head executes max+1 = 5 times as a warp... trace-driven: head issues:
     5 warp-level executions (masks 4,4,3,2,1 lanes); body issues 4 (masks
     4,3,2,1). *)
  let funcs =
    [
      Build.(
        func "worker"
          [
            mov (reg 1) (imm 0);
            while_ Cond.Le (reg 1) (reg 0) [ add (reg 1) (imm 1); add (reg 2) (imm 2) ];
            ret;
          ]);
    ]
  in
  let r, _ = analyze funcs ~args:(Array.init 4 (fun i -> [ i ])) in
  let rep = r.Analyzer.report in
  (* issues: prologue 1 + head 5*2 + body 4*3 + ret 1 = 24
     instrs: prologue 4 + head (4+4+3+2+1)*2=28 + body (4+3+2+1)*3=30 + ret 4
       = 66 *)
  Alcotest.(check int) "issues" 24 rep.Metrics.issues;
  Alcotest.(check int) "instrs" 66 rep.Metrics.thread_instrs

(* -- locks ----------------------------------------------------------------- *)

let lock_quantum = { Machine.default_config with quantum = 1 }

let test_lock_serialized_instr_accounting () =
  let funcs =
    [
      Build.(
        func "worker"
          [
            lock_acquire (imm 0x500);
            add (reg 1) (imm 1);
            add (reg 1) (imm 2);
            lock_release (imm 0x500);
            ret;
          ]);
    ]
  in
  let r, _ = analyze ~config:lock_quantum funcs ~args:(Array.make 4 []) in
  let rep = r.Analyzer.report in
  Alcotest.(check int) "one conflict group" 1 rep.Metrics.serializations;
  (* each lane's CS = [add;add;lock_release] block (3 instrs) replayed
     scalar: serialized instrs = 4 lanes * 3 *)
  Alcotest.(check int) "serialized instrs" 12 rep.Metrics.serialized_instrs;
  (* issues: acquire block 1 + 4*3 scalar + ret 1 = 14; instrs = 4 + 12 + 4 *)
  Alcotest.(check int) "issues" 14 rep.Metrics.issues;
  Alcotest.(check int) "instrs" 20 rep.Metrics.thread_instrs

let test_lock_disjoint_locks_lockstep () =
  (* every lane uses its own lock: no serialization at all *)
  let funcs =
    [
      Build.(
        func "worker"
          [
            mov (reg 1) (reg 0);
            shl (reg 1) (imm 6);
            add (reg 1) (imm 0x600);
            lock_acquire (reg 1);
            add (reg 2) (imm 1);
            lock_release (reg 1);
            ret;
          ]);
    ]
  in
  let r, _ = analyze ~config:lock_quantum funcs ~args:(Array.init 4 (fun i -> [ i ])) in
  Alcotest.(check int) "no serialization" 0 r.Analyzer.report.Metrics.serializations;
  Alcotest.(check (float 1e-9)) "full lockstep" 1.0
    r.Analyzer.report.Metrics.simt_efficiency

let test_lock_inside_callee () =
  (* the critical section lives in a helper function *)
  let funcs =
    [
      Build.(
        func "locked_add"
          [
            lock_acquire (imm 0x700);
            binop Op.Add (mem ~disp:0x20000 ()) (imm 1);
            lock_release (imm 0x700);
            ret;
          ]);
      Build.(func "worker" [ call "locked_add"; ret ]);
    ]
  in
  let r, run = analyze ~config:lock_quantum funcs ~args:(Array.make 4 []) in
  Alcotest.(check int) "serialized" 1 r.Analyzer.report.Metrics.serializations;
  let traced =
    Array.fold_left
      (fun acc t -> acc + (Thread_trace.stats t).Thread_trace.traced_instrs)
      0 run.Machine.traces
  in
  Alcotest.(check int) "conservation" traced
    r.Analyzer.report.Metrics.thread_instrs

let test_two_conflict_groups () =
  (* lanes 0,1 share lock A; lanes 2,3 share lock B: two groups serialized
     independently (the paper's different-locks-in-parallel rule) *)
  let funcs =
    [
      Build.(
        func "worker"
          [
            mov (reg 1) (reg 0);
            shr (reg 1) (imm 1);
            shl (reg 1) (imm 6);
            add (reg 1) (imm 0x800);
            lock_acquire (reg 1);
            add (reg 2) (imm 1);
            lock_release (reg 1);
            ret;
          ]);
    ]
  in
  let r, _ = analyze ~config:lock_quantum funcs ~args:(Array.init 4 (fun i -> [ i ])) in
  Alcotest.(check int) "two groups" 2 r.Analyzer.report.Metrics.serializations

let test_nested_locks () =
  (* outer lock per lane pair, inner global lock: the scalar critical
     section replay must consume the nested acquire/release transparently *)
  let funcs =
    [
      Build.(
        func "worker"
          [
            (* outer lock: lanes {0,1} share one, {2,3} another *)
            mov (reg 1) (reg 0);
            shr (reg 1) (imm 1);
            shl (reg 1) (imm 6);
            add (reg 1) (imm 0xa00);
            lock_acquire (reg 1);
            add (reg 2) (imm 1);
            (* inner: one global lock *)
            lock_acquire (imm 0xb00);
            binop Op.Add (mem ~disp:0x20000 ()) (imm 1);
            lock_release (imm 0xb00);
            add (reg 2) (imm 2);
            lock_release (reg 1);
            ret;
          ]);
    ]
  in
  let r, run = analyze ~config:lock_quantum funcs ~args:(Array.init 4 (fun i -> [ i ])) in
  let traced =
    Array.fold_left
      (fun acc t -> acc + (Thread_trace.stats t).Thread_trace.traced_instrs)
      0 run.Machine.traces
  in
  Alcotest.(check int) "conservation with nested locks" traced
    r.Analyzer.report.Metrics.thread_instrs;
  Alcotest.(check bool) "serialized" true (r.Analyzer.report.Metrics.serializations >= 2);
  (* machine-side: all four increments landed *)
  let mem = Threadfuser_machine.Machine.memory (fst (let prog = Threadfuser_prog.Program.assemble funcs in
    let m = Threadfuser_machine.Machine.create ~config:lock_quantum prog in
    let _ = Threadfuser_machine.Machine.run_workers m ~worker:"worker" ~args:(Array.init 4 (fun i -> [ i ])) in
    (m, ()))) in
  Alcotest.(check int) "increments" 4 (Threadfuser_machine.Memory.load_i64 mem 0x20000)

let test_lock_in_loop () =
  (* a lock acquired every iteration: serialization repeats per round and
     the loop still reconverges *)
  let funcs =
    [
      Build.(
        func "worker"
          [
            mov (reg 1) (imm 0);
            while_ Cond.Lt (reg 1) (imm 3)
              [
                lock_acquire (imm 0xc00);
                binop Op.Add (mem ~disp:0x20010 ()) (imm 1);
                lock_release (imm 0xc00);
                add (reg 1) (imm 1);
              ];
            ret;
          ]);
    ]
  in
  let r, run = analyze ~config:lock_quantum funcs ~args:(Array.make 4 []) in
  let traced =
    Array.fold_left
      (fun acc t -> acc + (Thread_trace.stats t).Thread_trace.traced_instrs)
      0 run.Machine.traces
  in
  Alcotest.(check int) "conservation" traced r.Analyzer.report.Metrics.thread_instrs;
  Alcotest.(check int) "three rounds serialized" 3
    r.Analyzer.report.Metrics.serializations;
  Alcotest.(check int) "acquires" 12 r.Analyzer.report.Metrics.lock_acquires

let test_sync_ignore_no_serialization () =
  let funcs =
    [
      Build.(
        func "worker"
          [
            lock_acquire (imm 0x900);
            add (reg 1) (imm 1);
            lock_release (imm 0x900);
            ret;
          ]);
    ]
  in
  let r, _ =
    analyze ~sync:Emulator.Ignore_sync ~config:lock_quantum funcs
      ~args:(Array.make 4 [])
  in
  Alcotest.(check int) "no serialization recorded" 0
    r.Analyzer.report.Metrics.serializations;
  Alcotest.(check (float 1e-9)) "lockstep" 1.0
    r.Analyzer.report.Metrics.simt_efficiency

(* -- tail warps and single-lane warps -------------------------------------- *)

let test_tail_warp_efficiency () =
  (* 3 uniform threads in a 4-wide warp: efficiency = 3/4 by Eq. 1 *)
  let funcs = [ Build.(func "worker" [ mov (reg 1) (imm 5); ret ]) ] in
  let r, _ = analyze funcs ~args:(Array.make 3 []) in
  Alcotest.(check (float 1e-9)) "3/4" 0.75 r.Analyzer.report.Metrics.simt_efficiency

let test_single_lane_warp () =
  let funcs = [ Build.(func "worker" [ mov (reg 1) (imm 5); ret ]) ] in
  let r, _ = analyze ~warp_size:32 funcs ~args:(Array.make 1 []) in
  Alcotest.(check (float 1e-9)) "1/32" (1. /. 32.)
    r.Analyzer.report.Metrics.simt_efficiency

(* -- switch-like multi-way divergence -------------------------------------- *)

let test_four_way_divergence () =
  (* four lanes, four distinct paths of different lengths, common join *)
  let arm k = Build.(List.init k (fun _ -> add (reg 2) (imm 1)) @ [ jmp "join" ]) in
  let funcs =
    [
      Build.(
        func "worker"
          (List.concat
             [
               [ cmp (reg 0) (imm 1); jcc Cond.Eq "a1" ];
               [ cmp (reg 0) (imm 2); jcc Cond.Eq "a2" ];
               [ cmp (reg 0) (imm 3); jcc Cond.Eq "a3" ];
               arm 1;
               [ label "a1" ];
               arm 2;
               [ label "a2" ];
               arm 3;
               [ label "a3" ];
               arm 4;
               [ label "join"; ret ];
             ]));
    ]
  in
  let r, run = analyze funcs ~args:(Array.init 4 (fun i -> [ i ])) in
  let traced =
    Array.fold_left
      (fun acc t -> acc + (Thread_trace.stats t).Thread_trace.traced_instrs)
      0 run.Machine.traces
  in
  Alcotest.(check int) "conservation" traced
    r.Analyzer.report.Metrics.thread_instrs;
  Alcotest.(check bool) "divergent but not fully serial" true
    (let e = r.Analyzer.report.Metrics.simt_efficiency in
     e > 0.25 && e < 1.0)

let () =
  Alcotest.run "emulator"
    [
      ( "calls",
        [
          Alcotest.test_case "call under divergence" `Quick test_call_under_divergence;
          Alcotest.test_case "nested calls" `Quick test_nested_calls;
          Alcotest.test_case "recursion" `Quick test_recursion;
        ] );
      ( "loops",
        [ Alcotest.test_case "tail divergence exact" `Quick test_loop_tail_divergence_exact ] );
      ( "locks",
        [
          Alcotest.test_case "serialized accounting" `Quick
            test_lock_serialized_instr_accounting;
          Alcotest.test_case "disjoint locks" `Quick test_lock_disjoint_locks_lockstep;
          Alcotest.test_case "lock inside callee" `Quick test_lock_inside_callee;
          Alcotest.test_case "two groups" `Quick test_two_conflict_groups;
          Alcotest.test_case "ignore mode" `Quick test_sync_ignore_no_serialization;
          Alcotest.test_case "nested locks" `Quick test_nested_locks;
          Alcotest.test_case "lock in loop" `Quick test_lock_in_loop;
        ] );
      ( "warp shapes",
        [
          Alcotest.test_case "tail warp" `Quick test_tail_warp_efficiency;
          Alcotest.test_case "single lane" `Quick test_single_lane_warp;
          Alcotest.test_case "four-way divergence" `Quick test_four_way_divergence;
        ] );
    ]
