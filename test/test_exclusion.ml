(* Tests for selective tracing (paper §III): excluded functions execute
   normally but vanish from traces, appearing as one Skip[Excluded] record
   per region. *)

open Threadfuser_prog
open Threadfuser
module Machine = Threadfuser_machine.Machine
module Memory = Threadfuser_machine.Memory
module Event = Threadfuser_trace.Event
module Thread_trace = Threadfuser_trace.Thread_trace
module W = Threadfuser_workloads.Workload
module Registry = Threadfuser_workloads.Registry

let funcs =
  [
    Build.(func "leafish" [ add (reg 2) (imm 1); add (reg 2) (imm 2); ret ]);
    Build.(
      func "library"
        [ call "leafish"; mul (reg 2) (imm 3); call "leafish"; ret ]);
    Build.(
      func "worker"
        [
          mov (reg 2) (reg 0);
          call "library";
          mov (mem ~scale:8 ~index:0 ~disp:0x20000 ()) (reg 2);
          ret;
        ]);
  ]

let run ?(exclude = []) () =
  let prog = Program.assemble funcs in
  let config = { Machine.default_config with untraced_functions = exclude } in
  let m = Machine.create ~config prog in
  let r = Machine.run_workers m ~worker:"worker" ~args:[| [ 5 ]; [ 7 ] |] in
  (m, prog, r)

let test_semantics_unchanged () =
  let m1, _, _ = run () in
  let m2, _, _ = run ~exclude:[ "library" ] () in
  (* ((tid + 1 + 2) * 3) + 1 + 2 *)
  List.iter
    (fun tid ->
      let expect = (((tid + 3) * 3) + 3) in
      Alcotest.(check int) "traced run" expect
        (Memory.load_i64 (Machine.memory m1) (0x20000 + (8 * tid)));
      Alcotest.(check int) "excluded run" expect
        (Memory.load_i64 (Machine.memory m2) (0x20000 + (8 * tid))))
    [ 5; 7 ]

let test_trace_shape () =
  let _, _, r = run ~exclude:[ "library" ] () in
  Array.iter
    (fun (t : Thread_trace.t) ->
      let kinds =
        Array.to_list t.Thread_trace.events
        |> List.map (function
             | Event.Block _ -> "B"
             | Event.Call _ -> "C"
             | Event.Return -> "R"
             | Event.Skip { reason = Event.Excluded; _ } -> "X"
             | Event.Skip _ -> "S"
             | _ -> "?")
      in
      (* worker block (ending in call), one excluded record, continuation,
         return — no Call/Return markers for the library *)
      Alcotest.(check (list string)) "shape" [ "B"; "X"; "B"; "R" ] kinds)
    r.Machine.traces

let test_excluded_instruction_count () =
  let _, _, r = run ~exclude:[ "library" ] () in
  let s = Thread_trace.stats r.Machine.traces.(0) in
  (* library: [call]=1 [mul;call]=2 [ret]=1 plus 2x leafish (3 each) = 10 *)
  Alcotest.(check int) "excluded instrs" 10 s.Thread_trace.skipped_excluded;
  (* worker keeps its own 2+2 = 4 instructions *)
  Alcotest.(check int) "traced instrs" 4 s.Thread_trace.traced_instrs

let test_exclude_nested_only () =
  (* excluding only the leaf keeps the library's own code traced *)
  let _, _, r = run ~exclude:[ "leafish" ] () in
  let s = Thread_trace.stats r.Machine.traces.(0) in
  Alcotest.(check int) "leaf instrs excluded" 6 s.Thread_trace.skipped_excluded;
  Alcotest.(check int) "library + worker traced" 8 s.Thread_trace.traced_instrs

let test_analyzer_handles_excluded_calls () =
  let _, prog, r = run ~exclude:[ "library" ] () in
  let res = Analyzer.analyze ~options:{ Analyzer.default_options with warp_size = 2 } prog r.Machine.traces in
  let rep = res.Analyzer.report in
  Alcotest.(check int) "only worker appears" 1
    (List.length rep.Metrics.per_function);
  Alcotest.(check int) "excluded counted" 20 rep.Metrics.skipped_excluded;
  Alcotest.(check (float 1e-9)) "uniform lanes stay lockstep" 1.0
    rep.Metrics.simt_efficiency;
  Alcotest.(check bool) "traced fraction < 1" true
    (Metrics.traced_fraction rep < 1.0)

let test_exclusion_hides_allocator_noise () =
  (* the paper's use case: carve a library call out of a hot microservice *)
  let full = W.analyze (Registry.find "hdsearch-mid") in
  let carved = W.analyze ~exclude:[ "vector" ] (Registry.find "hdsearch-mid") in
  let names (r : Analyzer.result) =
    List.map (fun (f : Metrics.func_stat) -> f.Metrics.func_name)
      r.Analyzer.report.Metrics.per_function
  in
  Alcotest.(check bool) "vector visible in full" true
    (List.mem "vector" (names full));
  Alcotest.(check bool) "vector carved out" false (List.mem "vector" (names carved));
  Alcotest.(check bool) "its callee __malloc carved too" false
    (List.mem "__malloc" (names carved));
  Alcotest.(check bool) "allocator serialization gone" true
    (carved.Analyzer.report.Metrics.serializations = 0
    && full.Analyzer.report.Metrics.serializations > 0);
  Alcotest.(check bool) "divergence remains (getpoint)" true
    (carved.Analyzer.report.Metrics.simt_efficiency < 0.6)

let test_unknown_exclusion_rejected () =
  let prog = Program.assemble funcs in
  let config = { Machine.default_config with untraced_functions = [ "ghost" ] } in
  match Machine.create ~config prog with
  | exception Program.Assembly_error _ -> ()
  | _ -> Alcotest.fail "expected error for unknown function"

let () =
  Alcotest.run "exclusion"
    [
      ( "machine",
        [
          Alcotest.test_case "semantics unchanged" `Quick test_semantics_unchanged;
          Alcotest.test_case "trace shape" `Quick test_trace_shape;
          Alcotest.test_case "instruction count" `Quick test_excluded_instruction_count;
          Alcotest.test_case "nested only" `Quick test_exclude_nested_only;
          Alcotest.test_case "unknown function" `Quick test_unknown_exclusion_rejected;
        ] );
      ( "analyzer",
        [
          Alcotest.test_case "excluded calls" `Quick test_analyzer_handles_excluded_calls;
          Alcotest.test_case "allocator carve-out" `Quick
            test_exclusion_hides_allocator_noise;
        ] );
    ]
