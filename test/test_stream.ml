(* The chunked streaming codec: any chunking decodes to the same frames,
   and hostile input (truncation, bit flips, oversized or trailing
   frames) can only ever produce [Corrupt] — never an exception or an
   unbounded allocation. *)

module Stream = Threadfuser_trace.Stream
module Serial = Threadfuser_trace.Serial
module Thread_trace = Threadfuser_trace.Thread_trace
module Event = Threadfuser_trace.Event
module Validate = Threadfuser_trace.Validate
module Tf_error = Threadfuser_util.Tf_error

let sample_traces =
  [|
    {
      Thread_trace.tid = 0;
      events =
        [|
          Event.Block
            {
              func = 0;
              block = 0;
              n_instr = 3;
              accesses =
                [| { Event.ioff = 1; addr = 0x100; size = 8; is_store = false } |];
            };
          Event.Call 1;
          Event.Lock_acq 0x40;
          Event.Lock_rel 0x40;
          Event.Return;
          Event.Barrier 0x7000;
          Event.Skip { reason = Event.Io; n_instr = 12 };
          Event.Return;
        |];
    };
    { Thread_trace.tid = 1; events = [||] };
    {
      Thread_trace.tid = 7;
      events = [| Event.Block { func = 2; block = 5; n_instr = 1; accesses = [||] } |];
    };
  |]

let is_infix ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let check_traces msg expected (actual : Thread_trace.t array) =
  Alcotest.(check int) (msg ^ ": count") (Array.length expected) (Array.length actual);
  Array.iteri
    (fun i (t : Thread_trace.t) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: trace %d" msg i)
        true
        (t = actual.(i)))
    expected

(* Drain a decoder into frames; [End_of_stream] and [Need_more] stop. *)
let drain dec =
  let acc = ref [] in
  let rec go () =
    match Stream.next dec with
    | Stream.Frame tr ->
        acc := tr :: !acc;
        go ()
    | s -> (Array.of_list (List.rev !acc), s)
  in
  go ()

let test_roundtrip () =
  match Stream.decode (Stream.encode sample_traces) with
  | Ok traces -> check_traces "one-shot decode" sample_traces traces
  | Error d -> Alcotest.failf "roundtrip failed: %a" Tf_error.pp d

(* Feeding the same stream under any chunking — byte-at-a-time included —
   yields the same frames. *)
let test_chunking_invariant () =
  let s = Stream.encode sample_traces in
  let feed_chunks sizes =
    let dec = Stream.create () in
    let pos = ref 0 in
    List.iter
      (fun n ->
        let n = min n (String.length s - !pos) in
        Stream.feed dec ~off:!pos ~len:n s;
        ignore (drain dec);
        pos := !pos + n)
      sizes;
    if !pos < String.length s then
      Stream.feed dec ~off:!pos ~len:(String.length s - !pos) s;
    dec
  in
  List.iter
    (fun sizes ->
      let dec = feed_chunks sizes in
      (* re-drain from scratch state: collect everything left *)
      let dec2 = Stream.create () in
      Stream.feed dec2 s;
      let all2, fin2 = drain dec2 in
      Alcotest.(check bool) "whole-stream drain ends" true (fin2 = Stream.End_of_stream);
      check_traces "chunked = whole" sample_traces all2;
      Alcotest.(check int) "all bytes fed" (String.length s) (Stream.bytes_fed dec))
    [
      [ String.length s ];
      List.init (String.length s) (fun _ -> 1);
      [ 3; 1; 10; 2; 1000 ];
      [ 0; 5; 0; 7; 100; 4 ];
    ];
  (* frames arrive incrementally, not only at the end *)
  let dec = Stream.create () in
  let got = ref 0 in
  String.iteri
    (fun i c ->
      ignore i;
      Stream.feed dec (String.make 1 c);
      let frames, _ = drain dec in
      got := !got + Array.length frames)
    s;
  Alcotest.(check int) "byte-at-a-time total frames" (Array.length sample_traces) !got

(* Every prefix of a valid stream: [Need_more] (or clean frames), never an
   exception, never [Corrupt] — truncation is indistinguishable from a
   slow sender until the bytes contradict the format. *)
let test_truncation_sweep () =
  let s = Stream.encode sample_traces in
  for cut = 0 to String.length s - 1 do
    let dec = Stream.create () in
    Stream.feed dec ~len:cut s;
    let _, fin = drain dec in
    (match fin with
    | Stream.Need_more -> ()
    | Stream.End_of_stream ->
        Alcotest.failf "cut at %d claimed a complete stream" cut
    | Stream.Corrupt d ->
        Alcotest.failf "cut at %d: corrupt instead of Need_more: %a" cut
          Tf_error.pp d
    | Stream.Frame _ -> assert false);
    (* the one-shot helper reports truncation as a typed error *)
    match Stream.decode (String.sub s 0 cut) with
    | Ok _ -> Alcotest.failf "decode accepted a %d-byte prefix" cut
    | Error _ -> ()
  done

(* Single bit flips decode to frames or typed corruption, never an
   exception.  (A flip may legally decode: payload bytes are opaque.) *)
let test_bitflip_sweep () =
  let s = Stream.encode sample_traces in
  for i = 0 to String.length s - 1 do
    for bit = 0 to 7 do
      let b = Bytes.of_string s in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
      match Stream.decode (Bytes.unsafe_to_string b) with
      | Ok _ | Error _ -> ()
      | exception e ->
          Alcotest.failf "flip %d.%d escaped as %s" i bit (Printexc.to_string e)
    done
  done

let test_oversized_frame () =
  let big =
    {
      Thread_trace.tid = 3;
      events =
        Array.init 4096 (fun i ->
            Event.Block { func = 0; block = i; n_instr = 1; accesses = [||] });
    }
  in
  let buf = Buffer.create 64 in
  Stream.add_magic buf;
  Stream.add_thread buf big;
  let s = Buffer.contents buf in
  let dec = Stream.create ~max_frame_bytes:256 () in
  (* only the header needs to arrive: the bound rejects the frame before
     the payload is buffered *)
  Stream.feed dec ~len:(min 16 (String.length s)) s;
  let _, fin = drain dec in
  (match fin with
  | Stream.Corrupt d ->
      Alcotest.(check bool) "names the bound" true
        (is_infix ~affix:"256-byte bound" (Format.asprintf "%a" Tf_error.pp d))
  | _ -> Alcotest.fail "oversized frame accepted from its header");
  (* sticky: feeding the rest does not resurrect the decoder *)
  Stream.feed dec ~off:16 s;
  match Stream.next dec with
  | Stream.Corrupt _ -> ()
  | _ -> Alcotest.fail "corruption was not sticky"

let test_trailing_bytes () =
  let s = Stream.encode sample_traces ^ "x" in
  match Stream.decode s with
  | Ok _ -> Alcotest.fail "trailing byte accepted"
  | Error d ->
      Alcotest.(check bool) "typed trailing-byte error" true
        (d.Tf_error.kind = Tf_error.Corrupt_input)

let test_bad_magic () =
  match Stream.decode ("XXSTREAM1" ^ String.sub (Stream.encode [||]) 9 1) with
  | Ok _ -> Alcotest.fail "bad magic accepted"
  | Error _ -> ()

(* Zero-length inputs: every entry point degrades, none throws. *)
let test_zero_length () =
  (match Stream.decode "" with
  | Ok _ -> Alcotest.fail "empty string is not a stream"
  | Error _ -> ());
  let dec = Stream.create () in
  Alcotest.(check bool) "empty decoder wants input" true (Stream.next dec = Stream.Need_more);
  Stream.feed dec "";
  Alcotest.(check bool) "empty feed is a no-op" true (Stream.next dec = Stream.Need_more);
  (match Serial.of_string "" with
  | exception Serial.Corrupt _ -> ()
  | exception Tf_error.Error _ -> ()
  | _ -> Alcotest.fail "Serial accepted empty input");
  Alcotest.(check int) "Validate.all on zero traces" 0
    (List.length (Validate.all [||]));
  let empty = { Thread_trace.tid = 0; events = [||] } in
  Alcotest.(check int) "empty trace validates clean" 0
    (List.length (Validate.thread empty));
  match Stream.decode (Stream.encode [| empty |]) with
  | Ok [| t |] -> Alcotest.(check bool) "empty trace round-trips" true (t = empty)
  | _ -> Alcotest.fail "empty-trace stream failed"

(* An end frame split across chunks, and bytes after it. *)
let test_end_frame_edges () =
  let buf = Buffer.create 16 in
  Stream.add_magic buf;
  Stream.add_end buf;
  let s = Buffer.contents buf in
  let dec = Stream.create () in
  Stream.feed dec ~len:(String.length s - 1) s;
  let frames, fin = drain dec in
  Alcotest.(check int) "no frames" 0 (Array.length frames);
  Alcotest.(check bool) "mid-end: Need_more" true (fin = Stream.Need_more);
  Stream.feed dec ~off:(String.length s - 1) s;
  Alcotest.(check bool) "end reached" true (Stream.next dec = Stream.End_of_stream);
  Alcotest.(check bool) "end is repeatable" true (Stream.next dec = Stream.End_of_stream);
  Stream.feed dec "z";
  match Stream.next dec with
  | Stream.Corrupt _ -> ()
  | _ -> Alcotest.fail "bytes after end-of-stream accepted"

let () =
  Alcotest.run "stream"
    [
      ( "codec",
        [
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "chunking invariant" `Quick test_chunking_invariant;
          Alcotest.test_case "end frame edges" `Quick test_end_frame_edges;
          Alcotest.test_case "zero-length inputs" `Quick test_zero_length;
        ] );
      ( "hostile",
        [
          Alcotest.test_case "truncation sweep" `Quick test_truncation_sweep;
          Alcotest.test_case "bit-flip sweep" `Slow test_bitflip_sweep;
          Alcotest.test_case "oversized frame" `Quick test_oversized_frame;
          Alcotest.test_case "trailing bytes" `Quick test_trailing_bytes;
          Alcotest.test_case "bad magic" `Quick test_bad_magic;
        ] );
    ]
