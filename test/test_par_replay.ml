(* Domain-parallel warp replay: the deterministic-reduction contract.
   Whatever the domain count or schedule, every analyzer artifact —
   report JSON, blame rankings, folded flamegraph, timelines, warp
   traces — must be byte-identical to the sequential replay. *)

module W = Threadfuser_workloads.Workload
module Registry = Threadfuser_workloads.Registry
module Analyzer = Threadfuser.Analyzer
module Metrics = Threadfuser.Metrics
module Par_replay = Threadfuser.Par_replay
module Warp_serial = Threadfuser.Warp_serial
module Report_json = Threadfuser_report.Report_json
module Flamegraph = Threadfuser_report.Flamegraph

(* ------------------------------------------------------------------ *)
(* map_shards unit behaviour                                            *)

(* Each index lands in exactly one shard, visited in ascending order
   within its worker, and shards come back in worker order. *)
let test_shards_partition () =
  List.iter
    (fun (schedule, domains, n) ->
      let shards =
        Par_replay.map_shards ~domains ~schedule ~n
          ~init:(fun () -> ref [])
          ~item:(fun acc i -> acc := i :: !acc)
      in
      let seen = List.concat_map (fun acc -> List.rev !acc) shards in
      let sorted = List.sort compare seen in
      Alcotest.(check (list int))
        (Printf.sprintf "%s d=%d n=%d covers each index once"
           (Par_replay.schedule_name schedule)
           domains n)
        (List.init n (fun i -> i))
        sorted;
      List.iter
        (fun acc ->
          let l = List.rev !acc in
          Alcotest.(check (list int)) "ascending within worker"
            (List.sort compare l) l)
        shards;
      (* static chunks are contiguous, so worker-order concatenation is
         the identity permutation *)
      if schedule = Par_replay.Static then
        Alcotest.(check (list int)) "static: worker order = index order"
          (List.init n (fun i -> i))
          seen)
    [
      (Par_replay.Static, 1, 7);
      (Par_replay.Static, 3, 7);
      (Par_replay.Static, 4, 4);
      (Par_replay.Static, 8, 3);
      (Par_replay.Dynamic, 3, 7);
      (Par_replay.Dynamic, 4, 16);
    ]

(* The exception a sequential loop would have raised first (lowest
   index) is the one that surfaces, whatever worker hit it. *)
let test_shards_exception () =
  List.iter
    (fun schedule ->
      match
        Par_replay.map_shards ~domains:4 ~schedule ~n:16
          ~init:(fun () -> ())
          ~item:(fun () i -> if i mod 5 = 3 then failwith (string_of_int i))
      with
      | _ -> Alcotest.fail "expected an item exception to propagate"
      | exception Failure i ->
          Alcotest.(check string)
            (Par_replay.schedule_name schedule ^ ": lowest failing index wins")
            "3" i)
    [ Par_replay.Static; Par_replay.Dynamic ]

(* parallel_for: the simulators' disjoint-range primitive *)
let test_parallel_for_coverage () =
  List.iter
    (fun (domains, n) ->
      let hits = Array.make n 0 in
      Par_replay.parallel_for ~domains ~n (fun i -> hits.(i) <- hits.(i) + 1);
      Alcotest.(check (list int))
        (Printf.sprintf "d=%d n=%d each index exactly once" domains n)
        (List.init n (fun _ -> 1))
        (Array.to_list hits))
    [ (1, 5); (3, 7); (4, 4); (8, 3); (6, 0) ]

let test_parallel_for_exception () =
  match
    Par_replay.parallel_for ~domains:4 ~n:12 (fun i ->
        if i mod 5 = 2 then failwith (string_of_int i))
  with
  | () -> Alcotest.fail "expected the body exception to propagate"
  | exception Failure i ->
      Alcotest.(check string) "lowest failing index wins" "2" i

(* auto -j: the work-based cap that keeps tiny workloads off the pool *)
let test_auto_domains () =
  let with_min_work v f =
    let old = Sys.getenv_opt "TF_DOMAINS_MIN_WORK" in
    Unix.putenv "TF_DOMAINS_MIN_WORK" v;
    Fun.protect
      ~finally:(fun () ->
        Unix.putenv "TF_DOMAINS_MIN_WORK"
          (Option.value old ~default:""))
      f
  in
  with_min_work "1000" (fun () ->
      Alcotest.(check int) "big workload keeps its domains" 4
        (Par_replay.auto_domains ~requested:4 ~items:16 ~work:100_000);
      Alcotest.(check int) "tiny workload collapses to 1" 1
        (Par_replay.auto_domains ~requested:4 ~items:16 ~work:900);
      Alcotest.(check int) "mid workload gets partial credit" 2
        (Par_replay.auto_domains ~requested:4 ~items:16 ~work:2_500);
      Alcotest.(check int) "items cap still applies" 3
        (Par_replay.auto_domains ~requested:8 ~items:3 ~work:1_000_000);
      Alcotest.(check int) "requested 1 stays 1" 1
        (Par_replay.auto_domains ~requested:1 ~items:16 ~work:100_000));
  with_min_work "0" (fun () ->
      Alcotest.(check int) "threshold <= 0 disables the heuristic" 4
        (Par_replay.auto_domains ~requested:4 ~items:16 ~work:1))

(* The pool persists across fork-join sections: helper count only ever
   grows to the machine cap, never one pool per analysis. *)
let test_pool_persistent () =
  let cap = max 0 (Domain.recommended_domain_count () - 1) in
  for round = 1 to 5 do
    let hits = Array.make 8 0 in
    Par_replay.parallel_for ~domains:4 ~n:8 (fun i -> hits.(i) <- round);
    Alcotest.(check int) "round complete" (8 * round)
      (Array.fold_left ( + ) 0 hits)
  done;
  let after = Par_replay.pool_domains () in
  Alcotest.(check bool)
    (Printf.sprintf "helpers %d bounded by machine cap %d" after cap)
    true
    (after <= cap);
  (* and a second burst neither loses results nor grows the pool *)
  let acc = Array.make 16 0 in
  Par_replay.parallel_for ~domains:4 ~n:16 (fun i -> acc.(i) <- i);
  Alcotest.(check int) "work still correct on the warm pool" 120
    (Array.fold_left ( + ) 0 acc);
  Alcotest.(check int) "pool did not grow past the cap"
    after (Par_replay.pool_domains ())

let test_schedule_names () =
  List.iter
    (fun s ->
      Alcotest.(check (option string))
        "schedule_of_string inverts schedule_name"
        (Some (Par_replay.schedule_name s))
        (Option.map Par_replay.schedule_name
           (Par_replay.schedule_of_string (Par_replay.schedule_name s))))
    [ Par_replay.Static; Par_replay.Dynamic ];
  Alcotest.(check bool) "unknown schedule rejected" true
    (Par_replay.schedule_of_string "fifo" = None)

(* ------------------------------------------------------------------ *)
(* End-to-end determinism over the workload registry                    *)

let analyze_at ?(warp_size = 32) ~domains ~schedule traced =
  Analyzer.analyze
    ~options:
      {
        Analyzer.default_options with
        Analyzer.warp_size;
        domains;
        schedule;
        gen_warp_trace = true;
        record_timeline = true;
      }
    traced.W.prog traced.W.traces

(* Full artifact set at -j1 vs -j4, static and dynamic. *)
let test_artifacts_identical () =
  List.iter
    (fun name ->
      let traced = W.trace_cpu (Registry.find name) in
      let base = analyze_at ~domains:1 ~schedule:Par_replay.Static traced in
      List.iter
        (fun schedule ->
          let par = analyze_at ~domains:4 ~schedule traced in
          let tag what =
            Printf.sprintf "%s [%s]: %s identical" name
              (Par_replay.schedule_name schedule)
              what
          in
          Alcotest.(check string) (tag "report JSON")
            (Report_json.to_string base.Analyzer.report)
            (Report_json.to_string par.Analyzer.report);
          Alcotest.(check string) (tag "folded flamegraph")
            (Flamegraph.folded ~weight:Flamegraph.Lost base.Analyzer.flame)
            (Flamegraph.folded ~weight:Flamegraph.Lost par.Analyzer.flame);
          Alcotest.(check string) (tag "warp trace bytes")
            (Warp_serial.to_string (Option.get base.Analyzer.warp_trace))
            (Warp_serial.to_string (Option.get par.Analyzer.warp_trace));
          Alcotest.(check bool) (tag "timelines") true
            (base.Analyzer.timelines = par.Analyzer.timelines);
          (* ranking order, not just content: blame output is consumed
             top-down *)
          Alcotest.(check (list string)) (tag "divergence ranking")
            (List.map
               (fun s ->
                 Printf.sprintf "%s:%d:%d" s.Metrics.ds_func s.Metrics.ds_block
                   s.Metrics.ds_lost_lanes)
               base.Analyzer.report.Metrics.divergence_sites)
            (List.map
               (fun s ->
                 Printf.sprintf "%s:%d:%d" s.Metrics.ds_func s.Metrics.ds_block
                   s.Metrics.ds_lost_lanes)
               par.Analyzer.report.Metrics.divergence_sites))
        [ Par_replay.Static; Par_replay.Dynamic ])
    [ "bfs"; "hdsearch-mid"; "uncoalesced"; "md5" ]

(* Degenerate shapes: sharding must be invisible when there is nothing
   (or almost nothing) to shard. *)
let test_edge_warp_counts () =
  let traced = W.trace_cpu (Registry.find "vectoradd") in
  (* 0 warps: an empty trace set analyzes cleanly at any -j *)
  let empty_report domains =
    Report_json.to_string
      (Analyzer.analyze
         ~options:{ Analyzer.default_options with Analyzer.domains }
         traced.W.prog [||])
        .Analyzer.report
  in
  Alcotest.(check string) "0 warps: -j8 = -j1" (empty_report 1) (empty_report 8);
  (* 1 warp (a single thread), domains >> warps *)
  let one_report domains =
    Report_json.to_string
      (Analyzer.analyze
         ~options:{ Analyzer.default_options with Analyzer.domains }
         traced.W.prog [| traced.W.traces.(0) |])
        .Analyzer.report
  in
  Alcotest.(check string) "1 warp: -j8 = -j1" (one_report 1) (one_report 8);
  (* more domains than warps: every artifact still byte-identical *)
  let base = analyze_at ~domains:1 ~schedule:Par_replay.Static traced in
  let wide = analyze_at ~domains:64 ~schedule:Par_replay.Static traced in
  Alcotest.(check string) "domains >> warps: report identical"
    (Report_json.to_string base.Analyzer.report)
    (Report_json.to_string wide.Analyzer.report);
  Alcotest.(check string) "domains >> warps: warp trace identical"
    (Warp_serial.to_string (Option.get base.Analyzer.warp_trace))
    (Warp_serial.to_string (Option.get wide.Analyzer.warp_trace))

(* Random (domains, schedule, warp size): the report never depends on
   how the replay was sharded. *)
let test_sharding_invisible =
  let traced = lazy (W.trace_cpu (Registry.find "vectoradd")) in
  let base = Hashtbl.create 4 in
  let base_for warp_size =
    match Hashtbl.find_opt base warp_size with
    | Some s -> s
    | None ->
        let s =
          Report_json.to_string
            (analyze_at ~warp_size ~domains:1 ~schedule:Par_replay.Static
               (Lazy.force traced))
              .Analyzer.report
        in
        Hashtbl.add base warp_size s;
        s
  in
  QCheck.Test.make ~name:"report independent of (domains, schedule, warp)"
    ~count:12
    QCheck.(
      triple (int_range 1 6)
        (map (fun b -> if b then Par_replay.Static else Par_replay.Dynamic)
           bool)
        (oneofl [ 2; 4; 8; 16; 32 ]))
    (fun (domains, schedule, warp_size) ->
      Report_json.to_string
        (analyze_at ~warp_size ~domains ~schedule (Lazy.force traced))
          .Analyzer.report
      = base_for warp_size)

let () =
  Alcotest.run "par_replay"
    [
      ( "map_shards",
        [
          Alcotest.test_case "partition covers indices" `Quick
            test_shards_partition;
          Alcotest.test_case "lowest-index exception wins" `Quick
            test_shards_exception;
          Alcotest.test_case "parallel_for coverage" `Quick
            test_parallel_for_coverage;
          Alcotest.test_case "parallel_for exception" `Quick
            test_parallel_for_exception;
          Alcotest.test_case "auto -j caps by work" `Quick test_auto_domains;
          Alcotest.test_case "pool persists across sections" `Quick
            test_pool_persistent;
          Alcotest.test_case "schedule names round-trip" `Quick
            test_schedule_names;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "artifacts identical at -j4" `Slow
            test_artifacts_identical;
          Alcotest.test_case "0/1-warp and domains > warps" `Quick
            test_edge_warp_counts;
          QCheck_alcotest.to_alcotest test_sharding_invisible;
        ] );
    ]
