(* Tests for the cycle-level SIMT simulator and the CPU timing model. *)

open Threadfuser
module Cache = Threadfuser_gpusim.Cache
module Dram = Threadfuser_gpusim.Dram
module Config = Threadfuser_gpusim.Config
module Gpusim = Threadfuser_gpusim.Gpusim
module Cpusim = Threadfuser_cpusim.Cpusim
module Machine = Threadfuser_machine.Machine
module Program = Threadfuser_prog.Program
module Build = Threadfuser_prog.Build
open Threadfuser_isa

(* -- cache --------------------------------------------------------------- *)

let small_cache () =
  Cache.create { Cache.size_bytes = 1024; assoc = 2; line_bytes = 32 }

let test_cache_hit_after_miss () =
  let c = small_cache () in
  Alcotest.(check bool) "first is miss" false (Cache.access c 0x100);
  Alcotest.(check bool) "second is hit" true (Cache.access c 0x100);
  Alcotest.(check bool) "same line hits" true (Cache.access c 0x11f);
  Alcotest.(check bool) "next line misses" false (Cache.access c 0x120)

let test_cache_lru_eviction () =
  let c = Cache.create { Cache.size_bytes = 64; assoc = 2; line_bytes = 32 } in
  (* one set, two ways *)
  ignore (Cache.access c 0x000);
  ignore (Cache.access c 0x020);
  ignore (Cache.access c 0x000);
  (* 0x020 is now LRU; inserting a third line evicts it *)
  ignore (Cache.access c 0x040);
  Alcotest.(check bool) "0x000 survives" true (Cache.access c 0x000);
  Alcotest.(check bool) "0x020 evicted" false (Cache.access c 0x020)

let test_cache_bigger_is_better () =
  let trace = Array.init 2000 (fun i -> i * 32 mod 4096) in
  let rate size =
    let c = Cache.create { Cache.size_bytes = size; assoc = 4; line_bytes = 32 } in
    Array.iter (fun a -> ignore (Cache.access c a)) trace;
    Cache.hit_rate c
  in
  Alcotest.(check bool) "4K <= 8K hit rate" true (rate 1024 <= rate 8192 +. 1e-9)

(* -- dram ---------------------------------------------------------------- *)

let test_dram_latency_and_bandwidth () =
  let d = Dram.create ~latency:100 ~transactions_per_cycle:1.0 in
  Alcotest.(check int) "first" 100 (Dram.access d ~now:0);
  Alcotest.(check int) "second queues" 101 (Dram.access d ~now:0);
  Alcotest.(check int) "third queues" 102 (Dram.access d ~now:0);
  (* after a quiet period the channel is free again *)
  Alcotest.(check int) "later access" 1100 (Dram.access d ~now:1000)

(* -- gpusim on synthetic warp traces ------------------------------------- *)

let alu_op =
  { Warp_trace.cls = Opclass.Ialu; dst = 1; srcs = [| 1 |]; mem = None }

let indep_op dst =
  { Warp_trace.cls = Opclass.Ialu; dst; srcs = [||]; mem = None }

let entry ?(mask = Mask.full 32) op = { Warp_trace.mask; op }

let kernel ops = { Warp_trace.warp_size = 32; warps = [| { Warp_trace.warp_id = 0; ops } |] }

let tiny = Config.tiny

let test_dependent_chain_slower () =
  let dep = kernel (Array.init 64 (fun _ -> entry alu_op)) in
  let indep = kernel (Array.init 64 (fun i -> entry (indep_op (i mod 8)))) in
  let sd = Gpusim.run ~config:tiny dep in
  let si = Gpusim.run ~config:tiny indep in
  Alcotest.(check bool)
    (Printf.sprintf "dep %d > indep %d cycles" sd.Gpusim.cycles si.Gpusim.cycles)
    true
    (sd.Gpusim.cycles > si.Gpusim.cycles)

let load_op addrs =
  {
    Warp_trace.cls = Opclass.Load;
    dst = 1;
    srcs = [||];
    mem =
      Some { Warp_trace.is_store = false; size = 8; space = Warp_trace.Global; addrs };
  }

let test_divergent_loads_slower () =
  let coalesced i =
    entry (load_op (Array.init 32 (fun l -> (i * 256) + (8 * l))))
  in
  let divergent i =
    entry (load_op (Array.init 32 (fun l -> (i * 32768) + (1024 * l))))
  in
  let sc = Gpusim.run ~config:tiny (kernel (Array.init 32 coalesced)) in
  let sv = Gpusim.run ~config:tiny (kernel (Array.init 32 divergent)) in
  Alcotest.(check bool) "divergent more dram txns" true
    (sv.Gpusim.dram_transactions > sc.Gpusim.dram_transactions);
  Alcotest.(check bool) "divergent slower" true (sv.Gpusim.cycles > sc.Gpusim.cycles)

let test_more_warps_scale () =
  (* with many independent warps, 8 SMs beat 1 SM *)
  let mk n_warps =
    {
      Warp_trace.warp_size = 32;
      warps =
        Array.init n_warps (fun warp_id ->
            { Warp_trace.warp_id; ops = Array.init 200 (fun i -> entry (indep_op (i mod 4))) });
    }
  in
  let cfg n_sms = { tiny with Config.n_sms } in
  let s1 = Gpusim.run ~config:(cfg 1) (mk 16) in
  let s8 = Gpusim.run ~config:(cfg 8) (mk 16) in
  Alcotest.(check bool) "8 SMs faster" true (s8.Gpusim.cycles < s1.Gpusim.cycles)

let test_deterministic () =
  let k = kernel (Array.init 100 (fun i -> entry (indep_op (i mod 3)))) in
  let a = Gpusim.run ~config:tiny k and b = Gpusim.run ~config:tiny k in
  Alcotest.(check int) "same cycles" a.Gpusim.cycles b.Gpusim.cycles

let test_lrr_vs_gto_both_finish () =
  let k =
    {
      Warp_trace.warp_size = 32;
      warps =
        Array.init 8 (fun warp_id ->
            { Warp_trace.warp_id; ops = Array.init 50 (fun _ -> entry alu_op) });
    }
  in
  let g = Gpusim.run ~config:{ tiny with Config.scheduler = Config.Gto } k in
  let l = Gpusim.run ~config:{ tiny with Config.scheduler = Config.Lrr } k in
  Alcotest.(check int) "same instrs" g.Gpusim.instructions l.Gpusim.instructions;
  Alcotest.(check bool) "both finish" true (g.Gpusim.cycles > 0 && l.Gpusim.cycles > 0)

(* -- end to end: workload -> analyzer -> gpusim -------------------------- *)

let vec_worker =
  Build.(
    func "worker"
      [
        mov (reg 1) (reg 0);
        shl (reg 1) (imm 3);
        add (reg 1) (imm 0x20000);
        mov (reg 2) (mem ~base:1 ());
        fadd (reg 2) (imm 3);
        mov (mem ~base:1 ()) (reg 2);
        ret;
      ])

let test_end_to_end_pipeline () =
  let prog = Program.assemble [ vec_worker ] in
  let m = Machine.create prog in
  let r =
    Machine.run_workers m ~worker:"worker" ~args:(Array.init 64 (fun i -> [ i ]))
  in
  let res =
    Analyzer.analyze
      ~options:{ Analyzer.default_options with gen_warp_trace = true }
      prog r.Machine.traces
  in
  let wt = Option.get res.Analyzer.warp_trace in
  Alcotest.(check int) "two warps" 2 (Array.length wt.Warp_trace.warps);
  let s = Gpusim.run ~config:tiny wt in
  Alcotest.(check bool) "cycles positive" true (s.Gpusim.cycles > 0);
  Alcotest.(check bool) "instructions positive" true (s.Gpusim.instructions > 0);
  (* every micro-op was issued exactly once *)
  Alcotest.(check int) "ops all issued" (Warp_trace.total_ops wt) s.Gpusim.instructions

let test_stall_attribution () =
  (* a dependent ALU chain stalls on dependencies; divergent loads consumed
     immediately stall on memory *)
  let dep = kernel (Array.init 64 (fun _ -> entry alu_op)) in
  let sd = Gpusim.run ~config:tiny dep in
  Alcotest.(check bool) "alu chain: dependency stalls dominate" true
    (sd.Gpusim.stall_dependency > sd.Gpusim.stall_memory);
  let loads_then_use i =
    if i mod 2 = 0 then
      entry (load_op (Array.init 32 (fun l -> (i * 32768) + (1024 * l))))
    else entry { Warp_trace.cls = Opclass.Ialu; dst = 2; srcs = [| 1 |]; mem = None }
  in
  let mem_bound = kernel (Array.init 64 loads_then_use) in
  let sm_ = Gpusim.run ~config:tiny mem_bound in
  Alcotest.(check bool) "load-use chain: memory stalls dominate" true
    (sm_.Gpusim.stall_memory > sm_.Gpusim.stall_dependency);
  Alcotest.(check bool) "classified as memory-bound" true
    (Gpusim.bottleneck sm_ = `Memory)

let test_analyzer_gpusim_lane_consistency () =
  (* the warp trace's per-micro-op lane accounting must tell the same
     divergence story the analyzer's Eq. 1 tells, within the reweighting
     that cracking introduces (micro-ops per instruction vary by kind) *)
  List.iter
    (fun name ->
      let w = Threadfuser_workloads.Registry.find name in
      let tr = Threadfuser_workloads.Workload.trace_cpu ~threads:64 w in
      let r =
        Analyzer.analyze
          ~options:{ Analyzer.default_options with gen_warp_trace = true }
          tr.Threadfuser_workloads.Workload.prog
          tr.Threadfuser_workloads.Workload.traces
      in
      let wt = Option.get r.Analyzer.warp_trace in
      let s = Gpusim.run ~config:tiny wt in
      let mop_eff =
        float_of_int s.Gpusim.thread_instructions
        /. float_of_int (s.Gpusim.instructions * 32)
      in
      let eff = r.Analyzer.report.Metrics.simt_efficiency in
      Alcotest.(check bool)
        (Printf.sprintf "%s: |%.3f - %.3f| < 0.12" name mop_eff eff)
        true
        (abs_float (mop_eff -. eff) < 0.12))
    [ "vectoradd"; "bfs"; "b+tree"; "md5" ]

(* -- domain-parallel simulation: epoch/domain invariance ------------------ *)

let check_stats_equal msg (a : Gpusim.stats) (b : Gpusim.stats) =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %d/%d cycles, %d/%d l2m, %d/%d dram" msg
       a.Gpusim.cycles b.Gpusim.cycles a.Gpusim.l2_misses b.Gpusim.l2_misses
       a.Gpusim.dram_transactions b.Gpusim.dram_transactions)
    true (a = b)

(* Random kernels: mixed ALU / load ops, partial masks, skewed warp
   sizes — everything that could expose an ordering leak in the
   SM-partition + cycle-epoch merge. *)
let gen_kernel =
  QCheck.Gen.(
    let gen_op warp seed =
      if seed mod 3 = 0 then
        load_op
          (Array.init 32 (fun l ->
               (warp * 4096) + (seed * 256 mod 32768) + (64 * l)))
      else if seed mod 3 = 1 then alu_op
      else indep_op (seed mod 8)
    in
    let* n_warps = int_range 1 8 in
    let* lens = array_repeat n_warps (int_range 1 60) in
    let* seeds = array_repeat n_warps (int_range 0 1000) in
    return
      {
        Warp_trace.warp_size = 32;
        warps =
          Array.init n_warps (fun warp_id ->
              let mask =
                if seeds.(warp_id) mod 4 = 0 then Mask.full 17 else Mask.full 32
              in
              {
                Warp_trace.warp_id;
                ops =
                  Array.init lens.(warp_id) (fun i ->
                      entry ~mask (gen_op warp_id (seeds.(warp_id) + i)));
              });
      })

(* The tentpole invariant: stats are a pure function of the kernel —
   never of the domain count or the epoch length. *)
let test_gpusim_epoch_domain_invariance =
  QCheck.Test.make ~name:"gpusim stats independent of (domains, epoch)"
    ~count:30
    (QCheck.make
       QCheck.Gen.(triple gen_kernel (int_range 1 6) (int_range 1 200)))
    (fun (k, domains, epoch) ->
      let serial = Gpusim.run ~config:tiny k in
      let par = Gpusim.run ~config:tiny ~domains ~epoch k in
      serial = par)

let test_gpusim_epoch_extremes () =
  let k =
    {
      Warp_trace.warp_size = 32;
      warps =
        Array.init 6 (fun warp_id ->
            {
              Warp_trace.warp_id;
              ops =
                Array.init 80 (fun i ->
                    if i mod 4 = 0 then
                      entry (load_op (Array.init 32 (fun l -> (warp_id * 32768) + (i * 512) + (64 * l))))
                    else entry alu_op);
            });
    }
  in
  let base = Gpusim.run ~config:tiny k in
  List.iter
    (fun (domains, epoch) ->
      check_stats_equal
        (Printf.sprintf "j%d epoch=%d" domains epoch)
        base
        (Gpusim.run ~config:tiny ~domains ~epoch k))
    [ (1, 1); (4, 1); (4, 3); (2, 100_000); (8, Gpusim.default_epoch) ]

let test_gpusim_empty_kernel () =
  let k = { Warp_trace.warp_size = 32; warps = [||] } in
  List.iter
    (fun domains ->
      let s = Gpusim.run ~config:tiny ~domains k in
      Alcotest.(check int) "no cycles" 0 s.Gpusim.cycles;
      Alcotest.(check int) "no instrs" 0 s.Gpusim.instructions)
    [ 1; 4 ]

(* -- cpusim --------------------------------------------------------------- *)

let cpu_traces n =
  let prog = Program.assemble [ vec_worker ] in
  let m = Machine.create prog in
  (Machine.run_workers m ~worker:"worker" ~args:(Array.init n (fun i -> [ i ])))
    .Machine.traces

let test_cpusim_cycle_accounting () =
  (* hand-computed: one thread on one core, cold caches *)
  let module Event = Threadfuser_trace.Event in
  let module TT = Threadfuser_trace.Thread_trace in
  let trace =
    {
      TT.tid = 0;
      events =
        [|
          Event.Block
            {
              func = 0;
              block = 0;
              n_instr = 10;
              accesses = [| { Event.ioff = 0; addr = 0x20000; size = 8; is_store = false } |];
            };
          Event.Skip { reason = Event.Io; n_instr = 5 };
          Event.Lock_acq 1;
          Event.Lock_rel 1;
          Event.Barrier 2;
          Event.Call 1;
          Event.Return;
          Event.Block { func = 0; block = 1; n_instr = 3; accesses = [||] };
        |];
    }
  in
  let cfg = { Cpusim.default_config with Cpusim.n_cores = 1 } in
  let s = Cpusim.run ~config:cfg [| trace |] in
  (* 10 instrs + cold miss (12 + 180) + 5 skip + 2x20 locks + 40 barrier
     + 2 + 2 call/ret + 3 instrs *)
  Alcotest.(check int) "cycles" (10 + 12 + 180 + 5 + 40 + 40 + 4 + 3) s.Cpusim.cycles;
  Alcotest.(check int) "instructions" 13 s.Cpusim.instructions

let test_cpusim_cache_reuse () =
  let module Event = Threadfuser_trace.Event in
  let module TT = Threadfuser_trace.Thread_trace in
  let block k =
    Event.Block
      {
        func = 0;
        block = k;
        n_instr = 1;
        accesses = [| { Event.ioff = 0; addr = 0x20000; size = 8; is_store = false } |];
      }
  in
  let trace = { TT.tid = 0; events = [| block 0; block 1 |] } in
  let cfg = { Cpusim.default_config with Cpusim.n_cores = 1 } in
  let s = Cpusim.run ~config:cfg [| trace |] in
  (* first access misses both levels, second hits L1 *)
  Alcotest.(check int) "cycles" (1 + 12 + 180 + 1) s.Cpusim.cycles;
  Alcotest.(check bool) "l1 reuse visible" true (s.Cpusim.l1_hit_rate > 0.4)

let test_cpusim_scales_with_threads () =
  let cfg = { Cpusim.default_config with n_cores = 4 } in
  let s8 = Cpusim.run ~config:cfg (cpu_traces 8) in
  let s64 = Cpusim.run ~config:cfg (cpu_traces 64) in
  Alcotest.(check bool) "more threads, more cycles" true
    (s64.Cpusim.cycles > s8.Cpusim.cycles)

let test_cpusim_uses_all_cores () =
  let cfg = { Cpusim.default_config with n_cores = 4 } in
  let s = Cpusim.run ~config:cfg (cpu_traces 8) in
  Array.iter
    (fun c -> Alcotest.(check bool) "core busy" true (c > 0))
    s.Cpusim.core_cycles;
  Alcotest.(check bool) "cycles = max core" true
    (s.Cpusim.cycles = Array.fold_left max 0 s.Cpusim.core_cycles)

let test_cpusim_domain_invariance () =
  let traces = cpu_traces 32 in
  List.iter
    (fun n_cores ->
      let cfg = { Cpusim.default_config with Cpusim.n_cores } in
      let base = Cpusim.run ~config:cfg traces in
      List.iter
        (fun domains ->
          let s = Cpusim.run ~config:cfg ~domains traces in
          Alcotest.(check bool)
            (Printf.sprintf "cores=%d j%d identical" n_cores domains)
            true (s = base))
        [ 2; 5; 8 ])
    [ 1; 3; 4; 20 ]

let () =
  Alcotest.run "gpusim"
    [
      ( "cache",
        [
          Alcotest.test_case "hit after miss" `Quick test_cache_hit_after_miss;
          Alcotest.test_case "lru eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "bigger is better" `Quick test_cache_bigger_is_better;
        ] );
      ( "dram",
        [ Alcotest.test_case "latency and bandwidth" `Quick test_dram_latency_and_bandwidth ] );
      ( "pipeline",
        [
          Alcotest.test_case "dependent chain" `Quick test_dependent_chain_slower;
          Alcotest.test_case "divergent loads" `Quick test_divergent_loads_slower;
          Alcotest.test_case "sm scaling" `Quick test_more_warps_scale;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "schedulers" `Quick test_lrr_vs_gto_both_finish;
          Alcotest.test_case "end to end" `Quick test_end_to_end_pipeline;
          Alcotest.test_case "stall attribution" `Quick test_stall_attribution;
          Alcotest.test_case "lane consistency" `Quick
            test_analyzer_gpusim_lane_consistency;
        ] );
      ( "parallel",
        [
          QCheck_alcotest.to_alcotest test_gpusim_epoch_domain_invariance;
          Alcotest.test_case "epoch extremes" `Quick test_gpusim_epoch_extremes;
          Alcotest.test_case "empty kernel" `Quick test_gpusim_empty_kernel;
        ] );
      ( "cpusim",
        [
          Alcotest.test_case "cycle accounting" `Quick test_cpusim_cycle_accounting;
          Alcotest.test_case "cache reuse" `Quick test_cpusim_cache_reuse;
          Alcotest.test_case "thread scaling" `Quick test_cpusim_scales_with_threads;
          Alcotest.test_case "core usage" `Quick test_cpusim_uses_all_cores;
          Alcotest.test_case "domain invariance" `Quick
            test_cpusim_domain_invariance;
        ] );
    ]
