(* Tests for the textual assembly format: exact round-trips over every
   workload program (including the runtime library), hand-written source
   parsing and execution, and parse-error reporting. *)

open Threadfuser_prog
module W = Threadfuser_workloads.Workload
module Registry = Threadfuser_workloads.Registry
module Rtlib = Threadfuser_workloads.Rtlib
module Machine = Threadfuser_machine.Machine

(* structural equality of assembled programs: same functions, same blocks,
   same resolved instructions *)
let programs_equal (a : Program.t) (b : Program.t) =
  Array.length a.Program.funcs = Array.length b.Program.funcs
  && Array.for_all2
       (fun (fa : Program.func) (fb : Program.func) ->
         fa.Program.name = fb.Program.name
         && Array.length fa.Program.blocks = Array.length fb.Program.blocks
         && Array.for_all2
              (fun (ba : Program.block) (bb : Program.block) ->
                ba.Program.instrs = bb.Program.instrs)
              fa.Program.blocks fb.Program.blocks)
       a.Program.funcs b.Program.funcs

let roundtrip_assembled (prog : Program.t) =
  let text = Asm_text.to_string (Asm_text.disassemble prog) in
  let back = Program.assemble (Asm_text.of_string text) in
  programs_equal prog back

let test_roundtrip_all_workloads () =
  List.iter
    (fun (w : W.t) ->
      let prog = W.link ~alloc:w.W.alloc w.W.cpu Threadfuser_compiler.Compiler.O1 in
      Alcotest.(check bool) (w.W.name ^ " round-trips") true (roundtrip_assembled prog))
    (Registry.hdsearch_mid_fixed :: Registry.all)

let test_roundtrip_optimized () =
  (* O0/O3 outputs stress every operand form (TLS spills, cmovs) *)
  let w = Registry.find "streamcluster" in
  List.iter
    (fun level ->
      let prog = W.link ~alloc:w.W.alloc w.W.cpu level in
      Alcotest.(check bool)
        (Threadfuser_compiler.Compiler.to_string level ^ " round-trips")
        true (roundtrip_assembled prog))
    Threadfuser_compiler.Compiler.all_levels

let test_parse_handwritten () =
  let source =
    {|
# a tiny kernel written by hand
func worker {
entry:
  mov.w8 r1, r0
  mul.w8 r1, $8
  add.w8 r1, $131072
  mov.w8 r2, [r1]
  fadd.w8 r2, $5        # bump
  mov.w8 [r1], r2
  cmp.w8 r2, $100
  jlt done
  atomic_add.w8 [65536], $1
done:
  ret
}
|}
  in
  let prog = Program.assemble (Asm_text.of_string source) in
  let m = Machine.create prog in
  Threadfuser_machine.Memory.store_i64 (Machine.memory m) (0x20000 + 8) 200;
  let r = Machine.run_workers m ~worker:"worker" ~args:[| [ 0 ]; [ 1 ] |] in
  ignore r;
  (* thread 0 read 0 -> writes 5, below 100, jumps over the bump;
     thread 1 read 200 -> writes 205, falls through and bumps the counter *)
  let mem = Machine.memory m in
  Alcotest.(check int) "thread 0 store" 5
    (Threadfuser_machine.Memory.load_i64 mem 0x20000);
  Alcotest.(check int) "thread 1 store" 205
    (Threadfuser_machine.Memory.load_i64 mem (0x20000 + 8));
  Alcotest.(check int) "counter" 1 (Threadfuser_machine.Memory.load_i64 mem 0x10000)

let test_mem_operand_forms () =
  let forms =
    [
      "[r1]"; "[r1+8]"; "[r1-8]"; "[r2*8]"; "[r1+r2*4]"; "[r1+r2*8+96]";
      "[4096]"; "[tls+1792]"; "[sp+r3*8]";
    ]
  in
  List.iter
    (fun form ->
      let src = Printf.sprintf "func f {\n  mov.w8 r1, %s\n  ret\n}\n" form in
      let surface = Asm_text.of_string src in
      (* emit and re-parse: the canonical form must be stable *)
      let again = Asm_text.of_string (Asm_text.to_string surface) in
      Alcotest.(check bool) (form ^ " stable") true (surface = again))
    forms

let test_barrier_and_io_roundtrip () =
  let src =
    "func worker {\n  io.in $25\n  barrier $327680\n  io.out $25\n  ret\n}\n"
  in
  let surface = Asm_text.of_string src in
  let prog = Program.assemble surface in
  Alcotest.(check bool) "assembled" true (Program.func_count prog = 1);
  Alcotest.(check bool) "round-trips" true (roundtrip_assembled prog)

let test_parse_errors () =
  let bad source =
    match Asm_text.of_string source with
    | exception Asm_text.Parse_error _ -> ()
    | _ -> Alcotest.fail ("expected parse error for: " ^ source)
  in
  bad "func f {\n  frobnicate r1, r2\n}\n";
  bad "func f {\n  mov.w3 r1, r2\n}\n";
  bad "func f {\n  mov.w8 r99, r2\n}\n";
  bad "  mov.w8 r1, r2\n";
  bad "func f {\n  mov.w8 r1\n}\n";
  bad "func f {\n  ret\n";
  bad "}\n"

let test_comments_and_blanks () =
  let src = "# header\n\nfunc f {\n\n  # only a comment\n  ret\n}\n# trailer\n" in
  let surface = Asm_text.of_string src in
  Alcotest.(check int) "one function" 1 (List.length surface);
  Alcotest.(check int) "one instruction" 1
    (List.length (List.hd surface).Surface.body)

let test_rtlib_emits_readably () =
  (* the runtime library exercises locks, TLS addressing and byte loops *)
  let text = Asm_text.to_string (Rtlib.funcs Rtlib.Glibc) in
  Alcotest.(check bool) "mentions malloc" true
    (let re = "func __malloc" in
     let n = String.length re and h = String.length text in
     let rec go i = i + n <= h && (String.sub text i n = re || go (i + 1)) in
     go 0);
  let back = Asm_text.of_string text in
  Alcotest.(check int) "same function count" 5 (List.length back)

(* -- instruction-level fuzz: every operand/mnemonic shape round-trips ---- *)

open Threadfuser_isa

let gen_instr =
  let open QCheck.Gen in
  let reg_ = map Reg.r (int_bound 13) in
  let gen_operand_nomem =
    oneof [ map (fun r -> Operand.Reg r) reg_; map (fun n -> Operand.Imm n) (int_range (-10000) 10000) ]
  in
  let gen_mem =
    let* base = opt reg_ in
    let* index = opt (pair reg_ (oneofl [ 1; 2; 4; 8 ])) in
    let* disp = int_range (-4096) 1_000_000 in
    return (Operand.mem ?base ?index ~disp ())
  in
  let gen_operand =
    frequency [ (3, gen_operand_nomem); (2, map (fun m -> Operand.Mem m) gen_mem) ]
  in
  let width = oneofl [ Width.W1; Width.W2; Width.W4; Width.W8 ] in
  let cond = oneofl [ Cond.Eq; Cond.Ne; Cond.Lt; Cond.Le; Cond.Gt; Cond.Ge ] in
  let binop =
    oneofl
      [ Op.Add; Op.Sub; Op.Mul; Op.Div; Op.Rem; Op.And; Op.Or; Op.Xor; Op.Shl;
        Op.Shr; Op.Sar; Op.Min; Op.Max; Op.Fadd; Op.Fsub; Op.Fmul; Op.Fdiv ]
  in
  let unop = oneofl [ Op.Neg; Op.Not; Op.Fsqrt ] in
  (* destination/source pair with at most one memory operand *)
  let dst_src =
    let* d = gen_operand in
    let* s = if Operand.is_mem d then gen_operand_nomem else gen_operand in
    return (d, s)
  in
  oneof
    [
      (let* w = width and* d, s = dst_src in
       return (Instr.Mov (w, d, s)));
      (let* c = cond and* r = reg_ and* s = gen_operand_nomem in
       return (Instr.Cmov (c, Operand.Reg r, s)));
      (let* r = reg_ and* m = gen_mem in
       return (Instr.Lea (r, m)));
      (let* op = binop and* w = width and* d, s = dst_src in
       QCheck.Gen.return (Instr.Binop (op, w, d, s)));
      (let* op = unop and* w = width and* d = gen_operand in
       return (Instr.Unop (op, w, d)));
      (let* w = width and* a, b = dst_src in
       return (Instr.Cmp (w, a, b)));
      (let* c = cond in return (Instr.Jcc (c, "somewhere")));
      return (Instr.Jmp "somewhere");
      return (Instr.Call "callee");
      return Instr.Ret;
      return Instr.Halt;
      (let* o = gen_operand in return (Instr.Lock_acquire o));
      (let* o = gen_operand in return (Instr.Lock_release o));
      (let* op = binop and* w = width and* m = gen_mem and* s = gen_operand_nomem in
       return (Instr.Atomic_rmw (op, w, m, s)));
      (let* d = oneofl [ Instr.In; Instr.Out ] and* o = gen_operand in
       return (Instr.Io (d, o)));
      (let* o = gen_operand in return (Instr.Barrier o));
    ]

let prop_instr_roundtrip =
  QCheck.Test.make ~name:"every instruction form round-trips through text"
    ~count:1000 (QCheck.make gen_instr) (fun instr ->
      let body =
        [ Surface.Label "somewhere"; Surface.Ins instr ]
        @ (if Instr.falls_through instr then [ Surface.Ins Instr.Ret ] else [])
      in
      let surface = [ { Surface.name = "callee"; body = [ Surface.Ins Instr.Ret ] };
                      { Surface.name = "f"; body } ] in
      let text = Asm_text.to_string surface in
      Asm_text.of_string text = surface)

let () =
  Alcotest.run "asm"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "all workloads" `Slow test_roundtrip_all_workloads;
          Alcotest.test_case "optimized code" `Quick test_roundtrip_optimized;
          Alcotest.test_case "rtlib" `Quick test_rtlib_emits_readably;
        ] );
      ( "parsing",
        [
          Alcotest.test_case "handwritten program" `Quick test_parse_handwritten;
          Alcotest.test_case "memory operand forms" `Quick test_mem_operand_forms;
          Alcotest.test_case "barrier and io" `Quick test_barrier_and_io_roundtrip;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "comments" `Quick test_comments_and_blanks;
          QCheck_alcotest.to_alcotest prop_instr_roundtrip;
        ] );
    ]
