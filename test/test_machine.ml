(* Tests for the MIMD machine: interpreter semantics, memory, scheduling,
   locks, tracing. *)

open Threadfuser_isa
open Threadfuser_prog
module Machine = Threadfuser_machine.Machine
module Memory = Threadfuser_machine.Memory
module Layout = Threadfuser_machine.Layout
module Event = Threadfuser_trace.Event
module Thread_trace = Threadfuser_trace.Thread_trace

let run_one body ~args =
  let prog = Program.assemble [ Build.func "f" body ] in
  let m = Machine.create prog in
  (m, Machine.run_func m ~fn:"f" ~args)

let test_arith () =
  let _, r =
    run_one
      Build.
        [
          mov (reg 0) (imm 6);
          mul (reg 0) (imm 7);
          sub (reg 0) (imm 2);
          ret;
        ]
      ~args:[]
  in
  Alcotest.(check int) "6*7-2" 40 r

let test_args_passed () =
  let _, r = run_one Build.[ add (reg 0) (reg 1); ret ] ~args:[ 30; 12 ] in
  Alcotest.(check int) "arg sum" 42 r

let test_loop_sum () =
  (* sum 0..9 *)
  let _, r =
    run_one
      Build.
        [
          mov (reg 0) (imm 0);
          for_up ~i:1 ~from_:(imm 0) ~below:(imm 10) [ add (reg 0) (reg 1) ];
          ret;
        ]
      ~args:[]
  in
  Alcotest.(check int) "sum" 45 r

let test_memory_roundtrip () =
  let _, r =
    run_one
      Build.
        [
          mov (reg 1) (imm 0x20000);
          mov (mem ~base:1 ~disp:8 ()) (imm 1234);
          mov (reg 0) (mem ~base:1 ~disp:8 ());
          ret;
        ]
      ~args:[]
  in
  Alcotest.(check int) "store/load" 1234 r

let test_width_truncation () =
  let _, r =
    run_one
      Build.
        [
          mov (reg 1) (imm 0x20000);
          mov (mem ~base:1 ()) (imm 0x1ff) ~w:Width.W1;
          mov (reg 0) (mem ~base:1 ()) ~w:Width.W1;
          ret;
        ]
      ~args:[]
  in
  Alcotest.(check int) "byte store truncates" 0xff r

let test_widths_w2_w4 () =
  let _, r =
    run_one
      Build.
        [
          mov (reg 1) (imm 0x20000);
          mov (mem ~base:1 ()) (imm 0x123456789) ~w:Width.W4;
          mov (reg 0) (mem ~base:1 ()) ~w:Width.W4;
          ret;
        ]
      ~args:[]
  in
  Alcotest.(check int) "w4 zero-extends" 0x23456789 r

let test_lea_and_indexing () =
  let _, r =
    run_one
      Build.
        [
          mov (reg 1) (imm 0x20000);
          mov (reg 2) (imm 3);
          lea 0 (mem ~base:1 ~index:2 ~scale:8 ~disp:16 ());
          ret;
        ]
      ~args:[]
  in
  Alcotest.(check int) "lea" (0x20000 + 24 + 16) r

let test_div_by_zero_defined () =
  let _, r =
    run_one
      Build.[ mov (reg 0) (imm 7); div (reg 0) (imm 0); ret ]
      ~args:[]
  in
  Alcotest.(check int) "div by zero is 0" 0 r

let test_cmov () =
  let _, r =
    run_one
      Build.
        [
          mov (reg 0) (imm 1);
          cmp (reg 0) (imm 5);
          cmov Cond.Lt (reg 0) (imm 99);
          cmov Cond.Gt (reg 0) (imm 11);
          ret;
        ]
      ~args:[]
  in
  Alcotest.(check int) "cmov taken then not" 99 r

let test_atomic_counter_two_threads () =
  let counter = 0x20000 in
  let prog =
    Program.assemble
      [
        Build.(
          func "worker"
            [
              mov (reg 1) (imm counter);
              atomic_rmw Op.Add (mem ~base:1 ()) (imm 1);
              ret;
            ]);
      ]
  in
  let m = Machine.create prog in
  let _ = Machine.run_workers m ~worker:"worker" ~args:[| []; []; []; [] |] in
  Alcotest.(check int) "atomic adds" 4 (Memory.load_i64 (Machine.memory m) counter)

let lock_addr = 0x30000

let counter_addr = 0x30100

let locked_increment =
  (* non-atomic read-modify-write protected by a lock *)
  Build.(
    func "worker"
      [
        lock_acquire (imm lock_addr);
        mov (reg 1) (imm counter_addr);
        mov (reg 2) (mem ~base:1 ());
        add (reg 2) (imm 1);
        mov (mem ~base:1 ()) (reg 2);
        lock_release (imm lock_addr);
        ret;
      ])

(* quantum = 1 forces interleaving at block granularity so locks actually
   contend *)
let contended_config = { Machine.default_config with quantum = 1 }

let test_lock_mutual_exclusion () =
  let prog = Program.assemble [ locked_increment ] in
  let m = Machine.create ~config:contended_config prog in
  let n = 8 in
  let r = Machine.run_workers m ~worker:"worker" ~args:(Array.make n []) in
  Alcotest.(check int) "all increments" n
    (Memory.load_i64 (Machine.memory m) counter_addr);
  (* every thread logged exactly one acquire and one release *)
  Array.iter
    (fun t ->
      let s = Thread_trace.stats t in
      Alcotest.(check int) "lock ops" 2 s.Thread_trace.lock_ops)
    r.Machine.traces

let test_lock_spin_recorded () =
  let prog = Program.assemble [ locked_increment ] in
  let m = Machine.create ~config:contended_config prog in
  let r = Machine.run_workers m ~worker:"worker" ~args:(Array.make 4 []) in
  let total_spin =
    Array.fold_left
      (fun acc t -> acc + (Thread_trace.stats t).Thread_trace.skipped_spin)
      0 r.Machine.traces
  in
  Alcotest.(check bool) "some spin recorded" true (total_spin > 0)

let test_deadlock_detected () =
  let prog =
    Program.assemble
      [ Build.(func "worker" [ lock_acquire (imm 0x40000); ret ]) ]
  in
  let m = Machine.create prog in
  (* thread 0 takes the lock and returns without releasing; thread 1 blocks
     forever *)
  match Machine.run_workers m ~worker:"worker" ~args:[| []; [] |] with
  | exception Machine.Machine_error _ -> ()
  | _ -> Alcotest.fail "expected deadlock"

let test_io_skip_event () =
  let _m, _ = run_one Build.[ io_in (imm 500); ret ] ~args:[] in
  let prog = Program.assemble [ Build.func "f" Build.[ io_in (imm 500); ret ] ] in
  let m = Machine.create prog in
  let r = Machine.run_workers m ~worker:"f" ~args:[| [] |] in
  let s = Thread_trace.stats r.Machine.traces.(0) in
  Alcotest.(check int) "io skipped" 500 s.Thread_trace.skipped_io

let test_trace_structure_call () =
  let prog =
    Program.assemble
      [
        Build.func "leaf" Build.[ mov (reg 0) (imm 5); ret ];
        Build.func "root" Build.[ call "leaf"; ret ];
      ]
  in
  let m = Machine.create prog in
  let r = Machine.run_workers m ~worker:"root" ~args:[| [] |] in
  let kinds =
    Array.to_list r.Machine.traces.(0).Thread_trace.events
    |> List.map (function
         | Event.Block _ -> "B"
         | Event.Call _ -> "C"
         | Event.Return -> "R"
         | Event.Lock_acq _ -> "L"
         | Event.Lock_rel _ -> "U"
         | Event.Barrier _ -> "Y"
         | Event.Skip _ -> "S")
  in
  Alcotest.(check (list string)) "event shape" [ "B"; "C"; "B"; "R"; "B"; "R" ] kinds

let test_memory_accesses_recorded () =
  let prog =
    Program.assemble
      [
        Build.(
          func "f"
            [
              mov (reg 1) (imm 0x20000);
              mov (mem ~base:1 ()) (imm 7);
              add (reg 2) (mem ~base:1 ());
              ret;
            ]);
      ]
  in
  let m = Machine.create prog in
  let r = Machine.run_workers m ~worker:"f" ~args:[| [] |] in
  let accesses =
    Array.to_list r.Machine.traces.(0).Thread_trace.events
    |> List.concat_map (function
         | Event.Block b -> Array.to_list b.accesses
         | _ -> [])
  in
  Alcotest.(check int) "access count" 2 (List.length accesses);
  let stores = List.filter (fun (a : Event.access) -> a.is_store) accesses in
  Alcotest.(check int) "one store" 1 (List.length stores)

let test_stack_isolation () =
  (* each thread pushes to its own stack region via sp *)
  let prog =
    Program.assemble
      [
        Build.(
          func "worker"
            [
              sub sp (imm 8);
              mov (mem ~base:15 ()) (reg 0);
              mov (reg 0) (mem ~base:15 ());
              add sp (imm 8);
              ret;
            ]);
      ]
  in
  let m = Machine.create prog in
  let r =
    Machine.run_workers m ~worker:"worker" ~args:[| [ 10 ]; [ 20 ]; [ 30 ] |]
  in
  Array.iteri
    (fun i regs ->
      Alcotest.(check int)
        (Printf.sprintf "thread %d result" i)
        ((i + 1) * 10)
        regs.(Reg.ret))
    r.Machine.final_regs

let test_determinism () =
  let run () =
    let prog = Program.assemble [ locked_increment ] in
    let m = Machine.create prog in
    let r = Machine.run_workers m ~worker:"worker" ~args:(Array.make 6 []) in
    Array.map (fun (t : Thread_trace.t) -> Array.length t.events) r.Machine.traces
  in
  Alcotest.(check (array int)) "same event counts" (run ()) (run ())

let test_untraced_mode_same_semantics () =
  (* trace = false records nothing but computes the same results *)
  let prog = Program.assemble [ locked_increment ] in
  let run trace =
    let m =
      Machine.create ~config:{ contended_config with Machine.trace } prog
    in
    let r = Machine.run_workers m ~worker:"worker" ~args:(Array.make 4 []) in
    (Memory.load_i64 (Machine.memory m) counter_addr, r.Machine.traces)
  in
  let v_on, traces_on = run true in
  let v_off, traces_off = run false in
  Alcotest.(check int) "same result" v_on v_off;
  Alcotest.(check bool) "traced has events" true
    (Array.exists (fun (t : Thread_trace.t) -> Array.length t.events > 0) traces_on);
  Alcotest.(check bool) "untraced is empty" true
    (Array.for_all (fun (t : Thread_trace.t) -> Array.length t.events = 0) traces_off)

let test_runaway_detected () =
  let prog =
    Program.assemble [ Build.func "f" Build.[ seq [ forever [ add (reg 1) (imm 1) ] ] ] ]
  in
  let config = { Machine.default_config with max_instrs = 10_000 } in
  let m = Machine.create ~config prog in
  match Machine.run_workers m ~worker:"f" ~args:[| [] |] with
  | exception Machine.Machine_error _ -> ()
  | _ -> Alcotest.fail "expected budget error"


(* -- broader instruction semantics ----------------------------------------- *)

let expr_result body = snd (run_one Build.(body @ [ ret ]) ~args:[])

let test_shifts () =
  Alcotest.(check int) "shl" 40
    (expr_result Build.[ mov (reg 0) (imm 5); shl (reg 0) (imm 3) ]);
  Alcotest.(check int) "shr logical" 5
    (expr_result Build.[ mov (reg 0) (imm 40); shr (reg 0) (imm 3) ]);
  Alcotest.(check int) "sar arithmetic" (-5)
    (expr_result Build.[ mov (reg 0) (imm (-40)); sar (reg 0) (imm 3) ])

let test_min_max_rem () =
  Alcotest.(check int) "min" 3
    (expr_result Build.[ mov (reg 0) (imm 7); min_ (reg 0) (imm 3) ]);
  Alcotest.(check int) "max" 7
    (expr_result Build.[ mov (reg 0) (imm 7); max_ (reg 0) (imm 3) ]);
  Alcotest.(check int) "rem" 1
    (expr_result Build.[ mov (reg 0) (imm 7); rem (reg 0) (imm 3) ]);
  Alcotest.(check int) "rem by zero" 0
    (expr_result Build.[ mov (reg 0) (imm 7); rem (reg 0) (imm 0) ])

let test_unops () =
  Alcotest.(check int) "neg" (-9)
    (expr_result Build.[ mov (reg 0) (imm 9); neg (reg 0) ]);
  Alcotest.(check int) "not" (lnot 9)
    (expr_result Build.[ mov (reg 0) (imm 9); not_ (reg 0) ]);
  Alcotest.(check int) "fsqrt exact" 12
    (expr_result Build.[ mov (reg 0) (imm 144); fsqrt (reg 0) ]);
  Alcotest.(check int) "fsqrt floor" 12
    (expr_result Build.[ mov (reg 0) (imm 168); fsqrt (reg 0) ])

let test_w2_memory () =
  Alcotest.(check int) "w2 truncation" 0x3456
    (expr_result
       Build.
         [
           mov (reg 1) (imm 0x20000);
           mov ~w:Width.W2 (mem ~base:1 ()) (imm 0x123456);
           mov ~w:Width.W2 (reg 0) (mem ~base:1 ());
         ])

let test_lea_absolute () =
  Alcotest.(check int) "lea without base" 0x1234
    (expr_result Build.[ lea 0 (mem ~disp:0x1234 ()) ])

let test_atomic_variants () =
  let run op init arg =
    let prog =
      Program.assemble
        [
          Build.(
            func "f"
              [
                mov (reg 1) (imm 0x20000);
                mov (mem ~base:1 ()) (imm init);
                atomic_rmw op (mem ~base:1 ()) (imm arg);
                mov (reg 0) (mem ~base:1 ());
                ret;
              ]);
        ]
    in
    let m = Machine.create prog in
    Machine.run_func m ~fn:"f" ~args:[]
  in
  Alcotest.(check int) "atomic max" 9 (run Op.Max 9 4);
  Alcotest.(check int) "atomic min" 4 (run Op.Min 9 4);
  Alcotest.(check int) "atomic or" 0b111 (run Op.Or 0b101 0b010);
  Alcotest.(check int) "atomic xor" 0b110 (run Op.Xor 0b101 0b011)

let test_store_to_immediate_rejected () =
  let prog =
    Program.assemble
      [ Build.(func "f" [ seq [ ins (Instr.Mov (Width.W8, imm 1, reg 0)) ]; ret ]) ]
  in
  let m = Machine.create prog in
  match Machine.run_func m ~fn:"f" ~args:[] with
  | exception Machine.Machine_error _ -> ()
  | _ -> Alcotest.fail "expected error"

let test_cmov_to_memory_rejected () =
  let prog =
    Program.assemble
      [
        Build.(
          func "f"
            [
              cmp (reg 0) (imm 0);
              seq [ ins (Instr.Cmov (Cond.Eq, mem ~disp:0x20000 (), reg 0)) ];
              ret;
            ]);
      ]
  in
  let m = Machine.create prog in
  match Machine.run_func m ~fn:"f" ~args:[] with
  | exception Machine.Machine_error _ -> ()
  | _ -> Alcotest.fail "expected error"

let test_call_depth_limit () =
  let prog =
    Program.assemble [ Build.(func "f" [ call "f"; ret ]) ]
  in
  let config = { Machine.default_config with max_call_depth = 64 } in
  let m = Machine.create ~config prog in
  match Machine.run_func m ~fn:"f" ~args:[] with
  | exception Machine.Machine_error _ -> ()
  | _ -> Alcotest.fail "expected call-depth error"

let test_mul_overflow_wraps () =
  (* 63-bit native ints wrap silently, like hardware *)
  let v =
    expr_result
      Build.[ mov (reg 0) (imm max_int); mul (reg 0) (imm 3); add (reg 0) (imm 0) ]
  in
  Alcotest.(check bool) "wrapped" true (v <> 3 * 1 && v = max_int * 3)

let () =
  Alcotest.run "machine"
    [
      ( "interp",
        [
          Alcotest.test_case "arith" `Quick test_arith;
          Alcotest.test_case "args" `Quick test_args_passed;
          Alcotest.test_case "loop sum" `Quick test_loop_sum;
          Alcotest.test_case "memory roundtrip" `Quick test_memory_roundtrip;
          Alcotest.test_case "width truncation" `Quick test_width_truncation;
          Alcotest.test_case "w4 zero-extend" `Quick test_widths_w2_w4;
          Alcotest.test_case "lea" `Quick test_lea_and_indexing;
          Alcotest.test_case "div by zero" `Quick test_div_by_zero_defined;
          Alcotest.test_case "cmov" `Quick test_cmov;
        ] );
      ( "threads",
        [
          Alcotest.test_case "atomic counter" `Quick test_atomic_counter_two_threads;
          Alcotest.test_case "lock mutual exclusion" `Quick test_lock_mutual_exclusion;
          Alcotest.test_case "spin recorded" `Quick test_lock_spin_recorded;
          Alcotest.test_case "deadlock detected" `Quick test_deadlock_detected;
          Alcotest.test_case "stack isolation" `Quick test_stack_isolation;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "runaway detected" `Quick test_runaway_detected;
          Alcotest.test_case "untraced mode" `Quick test_untraced_mode_same_semantics;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "shifts" `Quick test_shifts;
          Alcotest.test_case "min/max/rem" `Quick test_min_max_rem;
          Alcotest.test_case "unops" `Quick test_unops;
          Alcotest.test_case "w2 memory" `Quick test_w2_memory;
          Alcotest.test_case "lea absolute" `Quick test_lea_absolute;
          Alcotest.test_case "atomic variants" `Quick test_atomic_variants;
          Alcotest.test_case "store to imm" `Quick test_store_to_immediate_rejected;
          Alcotest.test_case "cmov to mem" `Quick test_cmov_to_memory_rejected;
          Alcotest.test_case "call depth" `Quick test_call_depth_limit;
          Alcotest.test_case "mul wraps" `Quick test_mul_overflow_wraps;
        ] );
      ( "tracing",
        [
          Alcotest.test_case "io skip" `Quick test_io_skip_event;
          Alcotest.test_case "call structure" `Quick test_trace_structure_call;
          Alcotest.test_case "accesses recorded" `Quick test_memory_accesses_recorded;
        ] );
    ]
