(* Divergence blame: site-level attribution, the replay flamegraph and
   report diffing (the `threadfuser blame` / `threadfuser diff` layer). *)

module W = Threadfuser_workloads.Workload
module Registry = Threadfuser_workloads.Registry
module Analyzer = Threadfuser.Analyzer
module Metrics = Threadfuser.Metrics
module Json = Threadfuser_report.Json
module Report_json = Threadfuser_report.Report_json
module Flamegraph = Threadfuser_report.Flamegraph
module Report_diff = Threadfuser_report.Report_diff

let analyze name = W.analyze (Registry.find name)

(* ------------------------------------------------------------------ *)
(* Site attribution                                                     *)

(* The paper's Fig. 7 diagnosis, automated: on hdsearch-mid the analyst
   should be pointed straight at getpoint's data-dependent loop branch,
   ahead of the allocator-lock serialization. *)
let test_hdsearch_blames_getpoint () =
  let r = analyze "hdsearch-mid" in
  match r.Analyzer.report.Metrics.divergence_sites with
  | [] -> Alcotest.fail "no divergence sites on a divergent workload"
  | top :: _ ->
      Alcotest.(check string) "top site is in getpoint" "getpoint"
        top.Metrics.ds_func;
      Alcotest.(check string) "top site is branch divergence" "branch"
        (Metrics.site_kind_name top.Metrics.ds_kind);
      Alcotest.(check bool) "non-zero lost-lane cost" true
        (top.Metrics.ds_lost_lanes > 0);
      Alcotest.(check bool) "non-zero split count" true
        (top.Metrics.ds_splits > 0);
      Alcotest.(check bool) "recoverable efficiency in (0, 1]" true
        (top.Metrics.ds_recoverable > 0.0 && top.Metrics.ds_recoverable <= 1.0)

(* Every inactive-lane issue slot is charged to exactly one site: summed
   over sites, the blame equals the program's total lost slots
   (issues * warp_size - thread_instrs).  Full warps only — a partial
   tail warp loses slots no site caused. *)
let test_blame_conservation () =
  List.iter
    (fun name ->
      let r = analyze name in
      let rep = r.Analyzer.report in
      let total_lost =
        (rep.Metrics.issues * rep.Metrics.warp_size)
        - rep.Metrics.thread_instrs
      in
      let blamed =
        List.fold_left
          (fun acc s -> acc + s.Metrics.ds_lost_lanes)
          0 rep.Metrics.divergence_sites
      in
      Alcotest.(check int)
        (name ^ ": blame accounts for every lost slot")
        total_lost blamed)
    [ "hdsearch-mid"; "bfs" ]

let test_mem_sites_consistent () =
  let r = analyze "hdsearch-mid" in
  let sites = r.Analyzer.report.Metrics.mem_sites in
  Alcotest.(check bool) "memory sites found" true (sites <> []);
  List.iter
    (fun m ->
      Alcotest.(check int)
        (Printf.sprintf "%s.b%d+%d: segment split sums to excess"
           m.Metrics.ms_func m.Metrics.ms_block m.Metrics.ms_ioff)
        m.Metrics.ms_excess
        (m.Metrics.ms_stack_excess + m.Metrics.ms_heap_excess
       + m.Metrics.ms_global_excess);
      Alcotest.(check bool) "txns >= minimum" true
        (m.Metrics.ms_txns >= m.Metrics.ms_min_txns))
    sites;
  (* ranking is by descending excess *)
  let rec sorted = function
    | a :: (b :: _ as rest) ->
        a.Metrics.ms_excess >= b.Metrics.ms_excess && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "sites ranked by excess" true (sorted sites)

(* ------------------------------------------------------------------ *)
(* Flamegraph                                                           *)

let test_flamegraph_roundtrip () =
  let r = analyze "hdsearch-mid" in
  let folded = Flamegraph.folded ~weight:Flamegraph.Issues r.Analyzer.flame in
  match Flamegraph.parse_folded folded with
  | Error m -> Alcotest.failf "emitted folded stacks do not parse: %s" m
  | Ok rows ->
      Alcotest.(check bool) "at least one stack" true (rows <> []);
      List.iter
        (fun (frames, weight) ->
          Alcotest.(check bool) "stack is rooted at the worker" true
            (List.hd frames = "worker");
          Alcotest.(check bool) "positive weight" true (weight > 0))
        rows;
      (* issue weights partition the program's issues across stacks *)
      let total = List.fold_left (fun acc (_, w) -> acc + w) 0 rows in
      Alcotest.(check int) "weights sum to total issues"
        r.Analyzer.report.Metrics.issues total

let test_flamegraph_lost_weighting () =
  let r = analyze "hdsearch-mid" in
  let folded = Flamegraph.folded ~weight:Flamegraph.Lost r.Analyzer.flame in
  match Flamegraph.parse_folded folded with
  | Error m -> Alcotest.failf "lost-weighted stacks do not parse: %s" m
  | Ok rows ->
      let total = List.fold_left (fun acc (_, w) -> acc + w) 0 rows in
      let rep = r.Analyzer.report in
      Alcotest.(check int) "lost weights sum to total lost slots"
        ((rep.Metrics.issues * rep.Metrics.warp_size)
        - rep.Metrics.thread_instrs)
        total

let test_folded_parser_rejects_malformed () =
  List.iter
    (fun (label, input) ->
      match Flamegraph.parse_folded input with
      | Ok _ -> Alcotest.failf "parser accepted %s: %S" label input
      | Error _ -> ())
    [
      ("a line with no weight", "main;leaf\n");
      ("an empty frame", "main;;leaf 5\n");
      ("a non-numeric weight", "main;leaf five\n");
      ("a negative weight", "main;leaf -3\n");
    ];
  match Flamegraph.parse_folded "main;leaf 5\n\nmain 2\n" with
  | Ok [ ([ "main"; "leaf" ], 5); ([ "main" ], 2) ] -> ()
  | Ok _ -> Alcotest.fail "parsed the wrong rows"
  | Error m -> Alcotest.failf "rejected a valid document: %s" m

(* ------------------------------------------------------------------ *)
(* Report diffing                                                       *)

let report_json name =
  match Json.parse (Report_json.to_string (analyze name).Analyzer.report) with
  | Ok j -> j
  | Error m -> Alcotest.failf "report JSON does not re-parse: %s" m

(* Structural update of one field along a path (replay is deterministic,
   so regressions have to be injected). *)
let rec set_field path value (j : Json.t) =
  match (path, j) with
  | [ k ], Json.Obj fields ->
      Json.Obj
        (List.map (fun (k', v) -> if k' = k then (k', value) else (k', v)) fields)
  | k :: rest, Json.Obj fields ->
      Json.Obj
        (List.map
           (fun (k', v) -> if k' = k then (k', set_field rest value v) else (k', v))
           fields)
  | _ -> j

let test_diff_identical () =
  let j = report_json "bfs" in
  match Report_diff.compare_reports ~tolerance:0.0 j j with
  | Error m -> Alcotest.failf "diff failed on identical reports: %s" m
  | Ok d ->
      Alcotest.(check bool) "no regression on identical reports" false
        (Report_diff.has_regression d);
      Alcotest.(check bool) "no metric changed" true
        (List.for_all
           (fun dl -> dl.Report_diff.before = dl.Report_diff.after)
           d.Report_diff.deltas)

let test_diff_flags_efficiency_regression () =
  let base = report_json "bfs" in
  let worse = set_field [ "simt_efficiency" ] (Json.Float 0.01) base in
  (match Report_diff.compare_reports ~tolerance:0.02 base worse with
  | Error m -> Alcotest.failf "diff failed: %s" m
  | Ok d ->
      Alcotest.(check bool) "efficiency drop is a regression" true
        (Report_diff.has_regression d);
      let r = Report_diff.regressions d in
      Alcotest.(check bool) "the flagged metric is simt_efficiency" true
        (List.exists
           (fun dl -> dl.Report_diff.metric = "simt_efficiency")
           r));
  (* the same change within a huge tolerance passes *)
  match Report_diff.compare_reports ~tolerance:10.0 base worse with
  | Error m -> Alcotest.failf "diff failed: %s" m
  | Ok d ->
      Alcotest.(check bool) "tolerance absorbs the change" false
        (Report_diff.has_regression d)

let test_diff_direction_aware () =
  let base = report_json "bfs" in
  (* an efficiency IMPROVEMENT must not be flagged *)
  let better = set_field [ "simt_efficiency" ] (Json.Float 0.999) base in
  (match Report_diff.compare_reports ~tolerance:0.0 base better with
  | Ok d ->
      Alcotest.(check bool) "improvement is not a regression" false
        (Report_diff.has_regression d)
  | Error m -> Alcotest.failf "diff failed: %s" m);
  (* more issues (lower-better) IS a regression *)
  let slower = set_field [ "issues" ] (Json.Int 99_999_999) base in
  match Report_diff.compare_reports ~tolerance:0.01 base slower with
  | Ok d ->
      Alcotest.(check bool) "issue growth is a regression" true
        (Report_diff.has_regression d)
  | Error m -> Alcotest.failf "diff failed: %s" m

let test_diff_site_level () =
  let base = report_json "hdsearch-mid" in
  (* double the top divergence site's lost slots in the "new" report *)
  let bump = function
    | Json.Obj fields ->
        Json.Obj
          (List.map
             (function
               | "lost_lane_slots", Json.Int n ->
                   ("lost_lane_slots", Json.Int (2 * n))
               | kv -> kv)
             fields)
    | j -> j
  in
  let worse =
    match base with
    | Json.Obj fields ->
        Json.Obj
          (List.map
             (function
               | "divergence_sites", Json.List (top :: rest) ->
                   ("divergence_sites", Json.List (bump top :: rest))
               | kv -> kv)
             fields)
    | j -> j
  in
  match Report_diff.compare_reports ~tolerance:0.05 base worse with
  | Error m -> Alcotest.failf "diff failed: %s" m
  | Ok d ->
      let r = Report_diff.regressions d in
      Alcotest.(check bool) "site-level regression flagged" true
        (List.exists
           (fun dl ->
             String.length dl.Report_diff.metric >= 16
             && String.sub dl.Report_diff.metric 0 16 = "divergence_sites")
           r)

let test_diff_rejects_non_reports () =
  match
    Report_diff.compare_reports (Json.Obj [ ("x", Json.Int 1) ])
      (Json.Obj [ ("x", Json.Int 1) ])
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted an object that is not a report"

let () =
  Alcotest.run "blame"
    [
      ( "sites",
        [
          Alcotest.test_case "hdsearch-mid blames getpoint" `Quick
            test_hdsearch_blames_getpoint;
          Alcotest.test_case "blame conserves lost slots" `Quick
            test_blame_conservation;
          Alcotest.test_case "memory sites consistent" `Quick
            test_mem_sites_consistent;
        ] );
      ( "flamegraph",
        [
          Alcotest.test_case "folded round-trip (issues)" `Quick
            test_flamegraph_roundtrip;
          Alcotest.test_case "folded round-trip (lost)" `Quick
            test_flamegraph_lost_weighting;
          Alcotest.test_case "parser rejects malformed" `Quick
            test_folded_parser_rejects_malformed;
        ] );
      ( "diff",
        [
          Alcotest.test_case "identical reports" `Quick test_diff_identical;
          Alcotest.test_case "efficiency regression" `Quick
            test_diff_flags_efficiency_regression;
          Alcotest.test_case "direction aware" `Quick test_diff_direction_aware;
          Alcotest.test_case "site-level regression" `Quick
            test_diff_site_level;
          Alcotest.test_case "rejects non-reports" `Quick
            test_diff_rejects_non_reports;
        ] );
    ]
