(* Streaming sessions: the byte-identity contract.  For any chunking of
   the input stream, any session budget (spill or no spill) and any
   domain count, [Analyzer.Session.finish] must produce artifacts
   byte-identical to the batch [Analyzer.analyze_checked] over the same
   traces — and the session's in-memory footprint must stay bounded by
   the budget while ingesting trace sets far larger than it. *)

module W = Threadfuser_workloads.Workload
module Registry = Threadfuser_workloads.Registry
module Analyzer = Threadfuser.Analyzer
module Session = Threadfuser.Analyzer.Session
module Metrics = Threadfuser.Metrics
module Par_replay = Threadfuser.Par_replay
module Warp_serial = Threadfuser.Warp_serial
module Stream = Threadfuser_trace.Stream
module Thread_trace = Threadfuser_trace.Thread_trace
module Event = Threadfuser_trace.Event
module Tf_error = Threadfuser_util.Tf_error
module Report_json = Threadfuser_report.Report_json
module Flamegraph = Threadfuser_report.Flamegraph

let options ~domains =
  {
    Analyzer.default_options with
    Analyzer.warp_size = 8;
    domains;
    gen_warp_trace = true;
    record_timeline = true;
  }

(* Feed [stream] to [session] in chunks cut by [sizes] (cycled). *)
let feed_chunked session stream sizes =
  let n = String.length stream in
  let pos = ref 0 and i = ref 0 in
  let sizes = Array.of_list sizes in
  while !pos < n do
    let len = min (max 1 sizes.(!i mod Array.length sizes)) (n - !pos) in
    Session.feed session ~off:!pos ~len stream;
    pos := !pos + len;
    incr i
  done

let check_equal ~tag (batch : Analyzer.checked) (streamed : Analyzer.checked) =
  Alcotest.(check string)
    (tag ^ ": report JSON")
    (Report_json.to_string batch.Analyzer.result.Analyzer.report)
    (Report_json.to_string streamed.Analyzer.result.Analyzer.report);
  Alcotest.(check string)
    (tag ^ ": folded flamegraph")
    (Flamegraph.folded ~weight:Flamegraph.Lost batch.Analyzer.result.Analyzer.flame)
    (Flamegraph.folded ~weight:Flamegraph.Lost
       streamed.Analyzer.result.Analyzer.flame);
  Alcotest.(check bool)
    (tag ^ ": timelines")
    true
    (batch.Analyzer.result.Analyzer.timelines
    = streamed.Analyzer.result.Analyzer.timelines);
  (match
     ( batch.Analyzer.result.Analyzer.warp_trace,
       streamed.Analyzer.result.Analyzer.warp_trace )
   with
  | Some b, Some s ->
      Alcotest.(check string)
        (tag ^ ": warp trace bytes")
        (Warp_serial.to_string b) (Warp_serial.to_string s)
  | None, None -> ()
  | _ -> Alcotest.fail (tag ^ ": warp trace presence differs"));
  Alcotest.(check bool)
    (tag ^ ": quarantine set")
    true
    (batch.Analyzer.quarantined = streamed.Analyzer.quarantined);
  Alcotest.(check bool)
    (tag ^ ": diagnostics")
    true
    (batch.Analyzer.diagnostics = streamed.Analyzer.diagnostics)

let session_over ?budget_bytes ~options ~chunks traces prog =
  let s = Session.create ~options ?budget_bytes prog in
  feed_chunked s (Stream.encode traces) chunks;
  Alcotest.(check bool) "end frame consumed" true (Session.input_done s);
  Alcotest.(check int) "all threads ingested" (Array.length traces)
    (Session.threads_ingested s);
  Session.finish s

(* Clean workload traces: chunkings × budgets (forcing and not forcing a
   spill) × domain counts. *)
let test_identical_to_batch () =
  List.iter
    (fun name ->
      let traced = W.trace_cpu (Registry.find name) in
      List.iter
        (fun domains ->
          let options = options ~domains in
          let batch =
            Analyzer.analyze_checked ~options traced.W.prog traced.W.traces
          in
          List.iter
            (fun (chunks, budget_bytes) ->
              let streamed =
                session_over ?budget_bytes ~options ~chunks traced.W.traces
                  traced.W.prog
              in
              check_equal
                ~tag:
                  (Printf.sprintf "%s -j%d chunks=%s budget=%s" name domains
                     (String.concat "," (List.map string_of_int chunks))
                     (match budget_bytes with
                     | None -> "default"
                     | Some b -> string_of_int b))
                batch streamed)
            [
              ([ max_int ], None);
              ([ 1; 7; 3 ], None);
              ([ 4096 ], Some 1);
              (* 1-byte budget: frame bound clamps to 64 KiB, spool spills
                 constantly — the maximal-stress configuration *)
              ([ 13; 4096; 1 ], Some 1);
            ])
        [ 1; 4 ])
    [ "vectoradd"; "bfs" ]

(* QCheck: random chunk boundaries, random budget, random domains. *)
let test_random_chunking =
  let traced = lazy (W.trace_cpu (Registry.find "vectoradd")) in
  let batch = Hashtbl.create 4 in
  let batch_for domains =
    match Hashtbl.find_opt batch domains with
    | Some c -> c
    | None ->
        let traced = Lazy.force traced in
        let c =
          Analyzer.analyze_checked ~options:(options ~domains) traced.W.prog
            traced.W.traces
        in
        Hashtbl.add batch domains c;
        c
  in
  QCheck.Test.make
    ~name:"streamed report independent of (chunking, budget, domains)"
    ~count:10
    QCheck.(
      triple
        (list_of_size Gen.(1 -- 8) (int_range 1 2048))
        (int_range 1 (1 lsl 20))
        (int_range 1 4))
    (fun (chunks, budget_bytes, domains) ->
      let traced = Lazy.force traced in
      let streamed =
        session_over ~budget_bytes ~options:(options ~domains) ~chunks
          traced.W.traces traced.W.prog
      in
      let batch = batch_for domains in
      Report_json.to_string batch.Analyzer.result.Analyzer.report
      = Report_json.to_string streamed.Analyzer.result.Analyzer.report
      && batch.Analyzer.quarantined = streamed.Analyzer.quarantined)

(* Quarantine parity: damaged threads (bad block refs, unbalanced calls,
   a barrier deserter) stream to the same partial report, diagnostics and
   quarantine set as the batch path. *)
let test_quarantine_parity () =
  let traced = W.trace_cpu (Registry.find "vectoradd") in
  let bad_call =
    { Thread_trace.tid = 9001; events = [| Event.Call 9999; Event.Return |] }
  in
  let deserter =
    (* casts a lone barrier vote; every other thread disagrees *)
    { Thread_trace.tid = 9002; events = [| Event.Barrier 0xdead |] }
  in
  let traces = Array.append traced.W.traces [| bad_call; deserter |] in
  let options = options ~domains:2 in
  let batch = Analyzer.analyze_checked ~options traced.W.prog traces in
  Alcotest.(check bool) "fixture actually quarantines" true
    (batch.Analyzer.quarantined <> []);
  let streamed =
    session_over ~options ~chunks:[ 37; 1; 511 ] traces traced.W.prog
  in
  check_equal ~tag:"damaged set" batch streamed

(* The memory contract: ingesting a stream much larger than the budget
   keeps [buffered_bytes] under it and spills the rest to disk. *)
let test_bounded_memory () =
  let traced = W.trace_cpu ~threads:64 (Registry.find "hdsearch-mid") in
  let stream = Stream.encode traced.W.traces in
  let budget_bytes = 128 * 1024 in
  Alcotest.(check bool) "fixture larger than budget" true
    (String.length stream > 4 * budget_bytes);
  let s = Session.create ~options:(options ~domains:1) ~budget_bytes traced.W.prog in
  let peak = ref 0 in
  let pos = ref 0 in
  let n = String.length stream in
  while !pos < n do
    let len = min 4096 (n - !pos) in
    Session.feed s ~off:!pos ~len stream;
    peak := max !peak (Session.buffered_bytes s);
    pos := !pos + len
  done;
  Alcotest.(check bool)
    (Printf.sprintf "peak in-memory bytes %d <= budget %d" !peak budget_bytes)
    true (!peak <= budget_bytes);
  Alcotest.(check bool) "the rest went to the spill file" true
    (Session.spilled_bytes s > String.length stream / 2);
  Alcotest.(check int) "ingestion metered" n (Session.bytes_ingested s);
  let c = Session.finish s in
  let batch =
    Analyzer.analyze_checked ~options:(options ~domains:1) traced.W.prog
      traced.W.traces
  in
  Alcotest.(check string) "spilled session still byte-identical"
    (Report_json.to_string batch.Analyzer.result.Analyzer.report)
    (Report_json.to_string c.Analyzer.result.Analyzer.report);
  Session.close s

(* Corruption mid-stream degrades the session, not the process: the
   sticky failure is reported, later chunks are discarded, and finish
   still analyzes the clean prefix. *)
let test_corrupt_midstream () =
  let traced = W.trace_cpu (Registry.find "vectoradd") in
  let stream = Stream.encode traced.W.traces in
  let cut = String.length stream / 2 in
  let s = Session.create ~options:(options ~domains:1) traced.W.prog in
  Session.feed s ~len:cut stream;
  let prefix = Session.threads_ingested s in
  Session.feed s "\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff";
  (match Session.failure s with
  | Some d ->
      Alcotest.(check bool) "typed corruption" true
        (d.Tf_error.kind = Tf_error.Corrupt_input)
  | None -> Alcotest.fail "corruption not recorded");
  (* post-corruption bytes are discarded, not buffered *)
  let before = Session.buffered_bytes s in
  Session.feed s (String.make 65536 'z');
  Alcotest.(check int) "chunks after corruption discarded" before
    (Session.buffered_bytes s);
  Alcotest.(check bool) "stream never completed" false (Session.input_done s);
  let c = Session.finish s in
  Alcotest.(check int) "prefix analyzed" prefix
    c.Analyzer.result.Analyzer.report.Metrics.coverage.Metrics.threads_total;
  (match c.Analyzer.diagnostics with
  | d :: _ -> Alcotest.(check bool) "failure leads diagnostics" true
      (d.Tf_error.kind = Tf_error.Corrupt_input)
  | [] -> Alcotest.fail "no diagnostics on a corrupt session")

(* Snapshots: a rolling report mid-ingest, the final report afterwards. *)
let test_snapshot () =
  let traced = W.trace_cpu (Registry.find "vectoradd") in
  let stream = Stream.encode traced.W.traces in
  let s = Session.create ~options:(options ~domains:2) traced.W.prog in
  Session.feed s ~len:(String.length stream / 2) stream;
  let mid = Session.snapshot s in
  Alcotest.(check int) "snapshot covers the ingested prefix"
    (Session.threads_ingested s)
    mid.Metrics.coverage.Metrics.threads_total;
  Session.feed s ~off:(String.length stream / 2) stream;
  let c = Session.finish s in
  Alcotest.(check string) "post-finish snapshot = final report"
    (Report_json.to_string c.Analyzer.result.Analyzer.report)
    (Report_json.to_string (Session.snapshot s))

(* Lifecycle edges: empty stream, misuse after finish/close, bad budgets. *)
let test_lifecycle () =
  let traced = W.trace_cpu (Registry.find "vectoradd") in
  let prog = traced.W.prog in
  (* empty stream (magic + end) analyzes like an empty batch *)
  let s = Session.create ~options:(options ~domains:1) prog in
  Session.feed s (Stream.encode [||]);
  let c = Session.finish s in
  let batch = Analyzer.analyze_checked ~options:(options ~domains:1) prog [||] in
  Alcotest.(check string) "empty session = empty batch"
    (Report_json.to_string batch.Analyzer.result.Analyzer.report)
    (Report_json.to_string c.Analyzer.result.Analyzer.report);
  (* finish is idempotent; feeding afterwards is a programming error *)
  Alcotest.(check bool) "finish idempotent" true (Session.finish s == c);
  (match Session.feed s "x" with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "feed after finish accepted");
  (* close keeps a finished result, kills an open session *)
  Session.close s;
  Alcotest.(check bool) "close keeps the result" true (Session.finish s == c);
  let s2 = Session.create prog in
  Session.close s2;
  (match Session.finish s2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "finish after close accepted");
  (match Session.create ~budget_bytes:0 prog with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero budget accepted");
  match
    Session.create
      ~options:{ (options ~domains:1) with Analyzer.batching = Threadfuser.Batching.Strided }
      prog
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-sequential batching accepted"

let () =
  Alcotest.run "session"
    [
      ( "byte-identity",
        [
          Alcotest.test_case "identical to batch" `Slow test_identical_to_batch;
          QCheck_alcotest.to_alcotest test_random_chunking;
          Alcotest.test_case "quarantine parity" `Quick test_quarantine_parity;
        ] );
      ( "bounded memory",
        [ Alcotest.test_case "budget respected" `Quick test_bounded_memory ] );
      ( "degradation",
        [
          Alcotest.test_case "corrupt mid-stream" `Quick test_corrupt_midstream;
          Alcotest.test_case "snapshots" `Quick test_snapshot;
          Alcotest.test_case "lifecycle edges" `Quick test_lifecycle;
        ] );
    ]
