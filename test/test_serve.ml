(* The serve daemon end-to-end: streamed reports byte-identical to batch,
   busy shedding, typed replies for corrupt / cut / stalled sessions with
   the daemon surviving every one of them, and a clean drain. *)

module W = Threadfuser_workloads.Workload
module Registry = Threadfuser_workloads.Registry
module Analyzer = Threadfuser.Analyzer
module Stream = Threadfuser_trace.Stream
module Serve = Threadfuser_serve.Serve
module Client = Threadfuser_serve.Client
module Protocol = Threadfuser_serve.Protocol
module Exec_fault = Threadfuser_fault.Exec_fault
module Report_json = Threadfuser_report.Report_json
module Json = Threadfuser_report.Json
module Log = Threadfuser_obs.Log

let () = Log.set_quiet ()

let fixture =
  lazy
    (let w = Registry.find "bfs" in
     let t = W.trace_cpu ~threads:64 w in
     let prog = t.W.prog in
     (prog, t.W.traces))

let sock_ctr = ref 0

let fresh_socket () =
  incr sock_ctr;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "tf-serve-%d-%d.sock" (Unix.getpid ()) !sock_ctr)

(* Run [f] against a live daemon; always drain it afterwards. *)
let with_daemon ?(max_sessions = 4) ?(workers = 2) ?deadline_s ?fault
    ?flight_dir ?(quota = Analyzer.Session.default_budget) f =
  let prog, _ = Lazy.force fixture in
  let socket_path = fresh_socket () in
  let stop = Atomic.make false in
  let ready_m = Mutex.create () in
  let ready_c = Condition.create () in
  let ready = ref false in
  let cfg =
    {
      (Serve.default_config ~prog ~socket_path) with
      Serve.max_sessions;
      workers;
      deadline_s;
      fault;
      flight_dir;
      session_quota = quota;
    }
  in
  let daemon =
    Domain.spawn (fun () ->
        Serve.run ~stop
          ~on_ready:(fun () ->
            Mutex.lock ready_m;
            ready := true;
            Condition.signal ready_c;
            Mutex.unlock ready_m)
          cfg)
  in
  Mutex.lock ready_m;
  while not !ready do
    Condition.wait ready_c ready_m
  done;
  Mutex.unlock ready_m;
  let fin () =
    Atomic.set stop true;
    Domain.join daemon
  in
  match f socket_path with
  | r ->
      let stats = fin () in
      (r, stats)
  | exception e ->
      ignore (fin ());
      raise e

let batch_json () =
  let prog, traces = Lazy.force fixture in
  let checked = Analyzer.analyze_checked prog traces in
  Report_json.to_string checked.Analyzer.result.Analyzer.report

(* Concurrent sessions, awkward chunk sizes: every report byte-identical
   to the batch pipeline's. *)
let test_byte_identity () =
  let _, traces = Lazy.force fixture in
  let expect = batch_json () in
  let (), stats =
    with_daemon (fun socket_path ->
        let clients =
          List.map
            (fun chunk_bytes ->
              Domain.spawn (fun () ->
                  Client.session_traces ~chunk_bytes ~socket_path traces))
            [ 7; 1024; 65536 ]
        in
        List.iter
          (fun d ->
            let o = Domain.join d in
            Alcotest.(check string)
              "status" "ok"
              (Protocol.status_name o.Client.reply.Protocol.status);
            Alcotest.(check int) "threads" (Array.length traces)
              o.Client.reply.Protocol.threads;
            match o.Client.report with
            | None -> Alcotest.fail "ok reply without a report frame"
            | Some r ->
                Alcotest.(check bool) "report byte-identical to batch" true
                  (String.equal expect r))
          clients)
  in
  Alcotest.(check int) "served" 3 stats.Serve.served;
  Alcotest.(check int) "none failed" 0 stats.Serve.failed

(* A raw connection that reads the greeting and then squats on its slot. *)
let squat socket_path =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket_path);
  (match Protocol.reply_of_json (Protocol.read_frame fd) with
  | Ok r ->
      Alcotest.(check string) "squatter greeted ready" "ready"
        (Protocol.status_name r.Protocol.status)
  | Error m -> Alcotest.failf "squatter greeting: %s" m);
  fd

let test_busy_shed () =
  let _, traces = Lazy.force fixture in
  let (), stats =
    with_daemon ~max_sessions:1 (fun socket_path ->
        let holder = squat socket_path in
        let o = Client.session_traces ~socket_path traces in
        Alcotest.(check string) "second session shed" "busy"
          (Protocol.status_name o.Client.reply.Protocol.status);
        Alcotest.(check bool) "busy says why" true
          (o.Client.reply.Protocol.message <> None);
        Alcotest.(check bool) "no report rides a busy reply" true
          (o.Client.report = None);
        (* free the slot: the daemon answers the squatter's empty close
           and the next client is served again.  Finishing the squatter
           takes the daemon a beat, so retry busy greetings briefly. *)
        Unix.close holder;
        let rec retry n =
          let o2 = Client.session_traces ~socket_path traces in
          match o2.Client.reply.Protocol.status with
          | Protocol.Busy when n > 0 ->
              Unix.sleepf 0.05;
              retry (n - 1)
          | s -> Alcotest.(check string) "slot freed" "ok" (Protocol.status_name s)
        in
        retry 100)
  in
  Alcotest.(check bool) "sheds counted" true (stats.Serve.shed >= 1)

(* Corrupt bytes, a cut connection, a hostile oversized frame: each gets a
   typed reply, and a clean session afterwards still gets a full report. *)
let test_poison_isolation () =
  let _, traces = Lazy.force fixture in
  let stream = Stream.encode traces in
  let expect = batch_json () in
  let (), stats =
    with_daemon (fun socket_path ->
        (* corrupt mid-stream *)
        let o =
          Client.session ~socket_path
            (String.sub stream 0 (String.length stream / 2)
            ^ String.make 16 '\xff')
        in
        Alcotest.(check string) "corrupt -> error" "error"
          (Protocol.status_name o.Client.reply.Protocol.status);
        Alcotest.(check (option string))
          "typed kind" (Some "corrupt-input") o.Client.reply.Protocol.kind;
        (* cut mid-stream: connect, send half, vanish *)
        let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX socket_path);
        ignore (Protocol.read_frame fd);
        Protocol.write_all fd (String.sub stream 0 (String.length stream / 3));
        Unix.close fd;
        (* the daemon still serves *)
        let o2 = Client.session_traces ~socket_path traces in
        Alcotest.(check string) "daemon survives poison" "ok"
          (Protocol.status_name o2.Client.reply.Protocol.status);
        Alcotest.(check bool) "clean report still byte-identical" true
          (o2.Client.report = Some expect))
  in
  Alcotest.(check bool) "failures counted" true (stats.Serve.failed >= 1);
  Alcotest.(check int) "only the clean session served" 1 stats.Serve.served

let test_deadline_timeout () =
  let _, traces = Lazy.force fixture in
  let stream = Stream.encode traces in
  let (), stats =
    with_daemon ~deadline_s:0.3 (fun socket_path ->
        let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            Unix.connect fd (Unix.ADDR_UNIX socket_path);
            ignore (Protocol.read_frame fd);
            (* send most of the stream, then stall past the deadline *)
            Protocol.write_all fd
              (String.sub stream 0 (String.length stream / 2));
            match Protocol.reply_of_json (Protocol.read_frame fd) with
            | Error m -> Alcotest.failf "timeout reply: %s" m
            | Ok r ->
                Alcotest.(check string) "stalled session times out" "timeout"
                  (Protocol.status_name r.Protocol.status);
                Alcotest.(check (option string))
                  "typed kind" (Some "timeout") r.Protocol.kind;
                Alcotest.(check bool) "partial report follows" true
                  r.Protocol.has_report;
                let report = Protocol.read_frame fd in
                Alcotest.(check bool) "prefix report non-empty" true
                  (String.length report > 2)))
  in
  Alcotest.(check int) "timeout counted failed" 1 stats.Serve.failed

(* Deterministic chaos: with --inject-disconnect at 100%, every session is
   cut and answered with a typed error; the daemon drains cleanly. *)
let test_injected_faults () =
  let _, traces = Lazy.force fixture in
  let fault =
    Exec_fault.session_plan ~seed:11 ~disconnect_pct:100
      ~disconnect_after:2048 ()
  in
  let outcomes, stats =
    with_daemon ~fault (fun socket_path ->
        List.init 3 (fun _ -> Client.session_traces ~socket_path traces))
  in
  List.iter
    (fun o ->
      Alcotest.(check string) "injected cut -> error" "error"
        (Protocol.status_name o.Client.reply.Protocol.status))
    outcomes;
  Alcotest.(check int) "all sessions failed" 3 stats.Serve.failed;
  (* same seed, same ordinals: the plan is reproducible *)
  List.iteri
    (fun i _ ->
      match Exec_fault.decide_session fault ~session:i with
      | Exec_fault.Disconnect _ -> ()
      | a ->
          Alcotest.failf "session %d decided %s, expected disconnect" i
            (Exec_fault.session_action_name a))
    outcomes

(* The admin surface, scraped mid-flight: a poisoned session and a live
   squatter, then a STATS scrape on the admin socket.  The JSON document
   is per-daemon state, so its counts are exact; the Prometheus text
   comes from the process-global collector, so we only assert family
   presence and the always-emitted lines there. *)
let test_admin_stats_scrape () =
  let (), _stats =
    with_daemon (fun socket_path ->
        (* a poisoned session: counted failed, then closed *)
        let o = Client.session ~socket_path (String.make 64 '\xff') in
        Alcotest.(check string) "poison -> error" "error"
          (Protocol.status_name o.Client.reply.Protocol.status);
        (* a squatter holding its slot: visible as an active session *)
        let holder = squat socket_path in
        Fun.protect
          ~finally:(fun () -> Unix.close holder)
          (fun () ->
            let body = Client.stats ~socket_path () in
            let j =
              match Json.parse body with
              | Ok j -> j
              | Error m -> Alcotest.failf "stats json unparsable: %s" m
            in
            let mem k v =
              match Json.member k v with
              | Some x -> x
              | None -> Alcotest.failf "stats doc missing %S" k
            in
            Alcotest.(check (option string))
              "schema" (Some "tfserve-stats/1")
              (Json.to_string_opt (mem "schema" j));
            let d = mem "daemon" j in
            let dint k =
              match Json.to_int_opt (mem k d) with
              | Some n -> n
              | None -> Alcotest.failf "daemon.%s not an int" k
            in
            Alcotest.(check int) "failed counted" 1 (dint "failed");
            Alcotest.(check int) "nothing served yet" 0 (dint "served");
            Alcotest.(check bool) "squatter active" true (dint "active" >= 1);
            Alcotest.(check bool) "flight recorder off" true
              (mem "flight_recorder" d = Json.Bool false);
            (match mem "sessions" j with
            | Json.List ss ->
                Alcotest.(check bool) "squatter listed reading" true
                  (List.exists
                     (fun s ->
                       Json.member "state" s = Some (Json.String "reading"))
                     ss)
            | _ -> Alcotest.fail "sessions is not a list");
            (* Prometheus exposition from the same socket *)
            let prom =
              Client.stats ~format:Protocol.Stats_prom ~socket_path ()
            in
            let has needle =
              let nl = String.length needle and pl = String.length prom in
              let rec go i =
                i + nl <= pl && (String.sub prom i nl = needle || go (i + 1))
              in
              go 0
            in
            List.iter
              (fun family ->
                Alcotest.(check bool) ("prom has " ^ family) true (has family))
              [
                "tf_serve_sessions_total";
                "tf_serve_sessions_failed_total";
                "tf_serve_sessions_active";
                "tf_serve_admin_scrapes_total";
                "tf_build_info{";
                "tf_uptime_seconds";
                "tf_obs_events_dropped_total";
              ];
            (* a garbage admin request gets a framed error, not a hang *)
            let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
            Fun.protect
              ~finally:(fun () ->
                try Unix.close fd with Unix.Unix_error _ -> ())
              (fun () ->
                Unix.connect fd
                  (Unix.ADDR_UNIX (Serve.admin_path_of socket_path));
                Protocol.write_all fd "FLAMEGRAPH please\n";
                match Json.parse (Protocol.read_frame fd) with
                | Ok e ->
                    Alcotest.(check bool) "typed error reply" true
                      (Json.member "error" e <> None)
                | Error m -> Alcotest.failf "admin error unparsable: %s" m)))
  in
  ()

(* A poisoned session with the flight recorder on: the daemon dumps a
   Chrome-trace timeline plus a metrics snapshot, and the trace re-parses
   with a non-empty [traceEvents] list that includes worker-side spans. *)
let test_flight_dump_on_poison () =
  let flight_dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "tf-flight-%d-%d" (Unix.getpid ()) !sock_ctr)
  in
  let (), stats =
    with_daemon ~flight_dir (fun socket_path ->
        let o = Client.session ~socket_path (String.make 64 '\xff') in
        Alcotest.(check string) "poison -> error" "error"
          (Protocol.status_name o.Client.reply.Protocol.status))
  in
  Alcotest.(check int) "one failure" 1 stats.Serve.failed;
  let dumps =
    Sys.readdir flight_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".trace.json")
  in
  Alcotest.(check int) "exactly one trace dump" 1 (List.length dumps);
  let trace_file = Filename.concat flight_dir (List.hd dumps) in
  let read_all path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  (match Json.parse (read_all trace_file) with
  | Error m -> Alcotest.failf "trace dump unparsable: %s" m
  | Ok j -> (
      match Json.member "traceEvents" j with
      | Some (Json.List evs) ->
          Alcotest.(check bool) "trace has events" true (List.length evs > 0);
          let names =
            List.filter_map
              (fun e ->
                Option.bind (Json.member "name" e) Json.to_string_opt)
              evs
          in
          Alcotest.(check bool) "loop-side accept note present" true
            (List.mem "accepted" names);
          Alcotest.(check bool) "terminal status note present" true
            (List.mem "session error" names)
      | _ -> Alcotest.fail "traceEvents missing or not a list"));
  let metrics_file =
    Filename.concat flight_dir
      (Filename.chop_suffix (List.hd dumps) ".trace.json" ^ ".metrics.txt")
  in
  Alcotest.(check bool) "metrics snapshot beside the trace" true
    (Sys.file_exists metrics_file);
  let metrics = read_all metrics_file in
  Alcotest.(check bool) "metrics snapshot is an exposition" true
    (String.length metrics > 0
    && String.sub metrics 0 6 = "# HELP")

let test_drain_idle () =
  let (), stats = with_daemon (fun _ -> ()) in
  Alcotest.(check int) "no sessions" 0
    (stats.Serve.served + stats.Serve.failed + stats.Serve.shed)

let () =
  Alcotest.run "serve"
    [
      ( "daemon",
        [
          Alcotest.test_case "byte identity, concurrent sessions" `Quick
            test_byte_identity;
          Alcotest.test_case "busy shed at max-sessions" `Quick test_busy_shed;
          Alcotest.test_case "poison isolation" `Quick test_poison_isolation;
          Alcotest.test_case "deadline timeout" `Quick test_deadline_timeout;
          Alcotest.test_case "injected faults" `Quick test_injected_faults;
          Alcotest.test_case "admin stats scrape" `Quick
            test_admin_stats_scrape;
          Alcotest.test_case "flight dump on poison" `Quick
            test_flight_dump_on_poison;
          Alcotest.test_case "idle drain" `Quick test_drain_idle;
        ] );
    ]
