(* The supervised suite runner: manifest accounting under crashes, stalls
   and deadlines; retry/backoff; the fsync'd checkpoint journal and
   --resume (including a real SIGKILL of the supervisor); both isolation
   modes; and determinism of report artifacts under parallelism. *)

module Runner = Threadfuser_runner.Runner
module Journal = Threadfuser_runner.Journal
module Backoff = Threadfuser_runner.Backoff
module Exec_fault = Threadfuser_fault.Exec_fault
module Obs = Threadfuser_obs.Obs
module Json = Threadfuser_report.Json

(* Unique scratch directory per test; pid-qualified so orphans from a
   previous killed run never collide. *)
let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "tfsuite-test-%d-%d" (Unix.getpid ()) !dir_counter)

let read_file p =
  let ic = open_in_bin p in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let small = [ "vectoradd"; "bfs"; "uncoalesced" ]

(* OCaml 5 forbids [Unix.fork] in a process that has ever spawned another
   domain, so any test exercising [Runner.Domains] must itself run in a
   forked subprocess: the child spawns domains and exits, the parent stays
   fork-clean for the remaining fork-isolation tests.  (A real CLI run
   picks one isolation mode per invocation, so the mix never arises.) *)
let in_subprocess f =
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      let code =
        try
          f ();
          0
        with e ->
          prerr_endline (Printexc.to_string e);
          1
      in
      Unix._exit code
  | pid -> (
      match snd (Unix.waitpid [] pid) with
      | Unix.WEXITED 0 -> ()
      | Unix.WEXITED c -> Alcotest.failf "subprocess failed with exit %d" c
      | Unix.WSIGNALED s | Unix.WSTOPPED s ->
          Alcotest.failf "subprocess killed by signal %d" s)

let config ?(parallelism = 2) ?(isolation = Runner.Fork) ?deadline_s
    ?(retries = 1) ?(backoff_s = 0.005) ?(resume = false) ?chaos dir =
  {
    Runner.default_config with
    parallelism;
    isolation;
    deadline_s;
    retries;
    backoff_s;
    resume;
    chaos;
    dir;
  }

let outcome_names m =
  List.map (fun e -> Runner.Outcome.name e.Runner.outcome) m.Runner.entries

(* ------------------------------------------------------------------ *)
(* Job ids and matrices                                                 *)

let test_job_id () =
  Alcotest.(check string)
    "defaults" "bfs.w32.O1.s1"
    (Runner.job_id (Runner.job "bfs"));
  Alcotest.(check string)
    "full" "pigz.w16.O3.s2.t8"
    (Runner.job_id
       (Runner.job ~warp_size:16 ~level:Threadfuser_compiler.Compiler.O3
          ~threads:8 ~scale:2 "pigz"))

let test_matrix () =
  let jobs =
    Runner.matrix ~workloads:[ "a"; "b" ] ~warp_sizes:[ 8; 32 ]
      ~levels:[ Threadfuser_compiler.Compiler.O0 ]
      ()
  in
  Alcotest.(check (list string))
    "workload-major order"
    [ "a.w8.O0.s1"; "a.w32.O0.s1"; "b.w8.O0.s1"; "b.w32.O0.s1" ]
    (List.map Runner.job_id jobs)

(* ------------------------------------------------------------------ *)
(* The happy path, both isolation modes                                 *)

let check_happy isolation () =
  let dir = fresh_dir () in
  let m =
    Runner.run
      ~config:(config ~isolation dir)
      (List.map Runner.job small)
  in
  Alcotest.(check int) "all jobs accounted" 3 (List.length m.Runner.entries);
  Alcotest.(check bool) "all ok" true (Runner.all_ok m);
  List.iter
    (fun (e : Runner.entry) ->
      Alcotest.(check int) "single attempt" 1 e.Runner.attempts;
      match e.Runner.report_file with
      | None -> Alcotest.fail "success without report"
      | Some rel ->
          let j =
            match Json.parse (read_file (Filename.concat dir rel)) with
            | Ok j -> j
            | Error m -> Alcotest.fail m
          in
          (match Threadfuser_report.Report_json.validate j with
          | Ok () -> ()
          | Error m -> Alcotest.fail m))
    m.Runner.entries;
  (* the manifest file exists and matches *)
  (match Json.parse (read_file (Runner.manifest_path dir)) with
  | Error m -> Alcotest.fail m
  | Ok j ->
      Alcotest.(check (option int))
        "manifest job count" (Some 3)
        (Option.bind (Json.member "jobs" j) Json.to_int_opt));
  (* dedup: the same job twice runs once *)
  let m2 =
    Runner.run
      ~config:(config ~isolation (fresh_dir ()))
      [ Runner.job "bfs"; Runner.job "bfs" ]
  in
  Alcotest.(check int) "duplicates dropped" 1 (List.length m2.Runner.entries)

(* ------------------------------------------------------------------ *)
(* Faults: crash, retry, give-up, stall/deadline                        *)

(* 100% crash on attempt 1 only: every job fails once, retries, recovers.
   Also exercises the Obs integration: the retries counter and the suite
   track must record the recovery. *)
let test_crash_then_recover () =
  let dir = fresh_dir () in
  let chaos = Exec_fault.plan ~crash_pct:100 ~first_attempt_only:true () in
  let retries_ctr = Obs.Counter.make "tf_suite_retries" in
  Obs.reset ();
  Obs.set_enabled true;
  let m =
    Fun.protect
      ~finally:(fun () -> Obs.set_enabled false)
      (fun () ->
        Runner.run ~config:(config ~chaos dir) (List.map Runner.job small))
  in
  Alcotest.(check bool) "recovered" true (Runner.all_ok m);
  List.iter
    (fun (e : Runner.entry) ->
      Alcotest.(check int) "two attempts" 2 e.Runner.attempts)
    m.Runner.entries;
  Alcotest.(check int) "retries counted" 3 (Obs.Counter.value retries_ctr);
  let snap = Obs.snapshot () in
  let suite_events =
    List.filter
      (function
        | Obs.Complete { track; _ } | Obs.Instant { track; _ } ->
            List.assoc_opt track snap.Obs.tracks = Some "suite")
      snap.Obs.events
  in
  Alcotest.(check bool) "suite track has events" true (suite_events <> []);
  Obs.reset ()

let test_gave_up () =
  let dir = fresh_dir () in
  let chaos = Exec_fault.plan ~crash_pct:100 ~first_attempt_only:false () in
  let m =
    Runner.run
      ~config:(config ~retries:2 ~chaos dir)
      [ Runner.job "vectoradd" ]
  in
  match m.Runner.entries with
  | [ e ] ->
      (match e.Runner.outcome with
      | Runner.Outcome.Gave_up msg ->
          Alcotest.(check bool)
            "detail names the last failure" true
            (String.length msg > 0)
      | o -> Alcotest.fail ("expected gave-up, got " ^ Runner.Outcome.name o));
      Alcotest.(check int) "budget exhausted" 3 e.Runner.attempts;
      Alcotest.(check int) "nothing else in manifest" 1
        (List.length m.Runner.entries);
      Alcotest.(check (list string)) "failures lists it" [ e.Runner.id ]
        (List.map (fun e -> e.Runner.id) (Runner.failures m))
  | _ -> Alcotest.fail "expected exactly one entry"

(* A first-attempt crash with no retry budget keeps its own kind. *)
let test_crashed_kind () =
  let dir = fresh_dir () in
  let chaos = Exec_fault.plan ~crash_pct:100 () in
  let m =
    Runner.run ~config:(config ~retries:0 ~chaos dir) [ Runner.job "bfs" ]
  in
  Alcotest.(check (list string)) "crashed" [ "crashed" ] (outcome_names m)

(* A terminal failure dumps the job's flight recorder: the entry points
   at [flight/<id>.trace.json], the trace re-parses with the supervisor's
   lifecycle notes in it, and a metrics snapshot sits beside it.
   Successful jobs dump nothing. *)
let test_flight_dump_on_terminal_failure () =
  let dir = fresh_dir () in
  let chaos =
    Exec_fault.plan ~crash_pct:100 ~first_attempt_only:false
      ~only_prefix:"bfs" ()
  in
  let m =
    Runner.run
      ~config:(config ~retries:1 ~chaos dir)
      [ Runner.job "bfs"; Runner.job "vectoradd" ]
  in
  let entry id =
    List.find (fun (e : Runner.entry) -> e.Runner.id = id) m.Runner.entries
  in
  let failed = entry "bfs.w32.O1.s1" and ok = entry "vectoradd.w32.O1.s1" in
  Alcotest.(check string) "bfs gave up" "gave-up"
    (Runner.Outcome.name failed.Runner.outcome);
  Alcotest.(check (option string))
    "success has no flight dump" None ok.Runner.flight_file;
  match failed.Runner.flight_file with
  | None -> Alcotest.fail "terminal failure without a flight dump"
  | Some rel ->
      Alcotest.(check string)
        "dump path is flight/<id>.trace.json" "flight/bfs.w32.O1.s1.trace.json"
        rel;
      let trace_path = Filename.concat dir rel in
      Alcotest.(check bool) "trace exists" true (Sys.file_exists trace_path);
      let j =
        match Json.parse (read_file trace_path) with
        | Ok j -> j
        | Error m -> Alcotest.failf "trace unparsable: %s" m
      in
      let evs =
        match Json.member "traceEvents" j with
        | Some (Json.List evs) -> evs
        | _ -> Alcotest.fail "traceEvents missing or not a list"
      in
      Alcotest.(check bool) "trace has events" true (evs <> []);
      let names =
        List.filter_map
          (fun e -> Option.bind (Json.member "name" e) Json.to_string_opt)
          evs
      in
      List.iter
        (fun expect ->
          Alcotest.(check bool) ("note present: " ^ expect) true
            (List.mem expect names))
        [ "attempt spawned"; "attempt failed"; "job failed terminally" ];
      let metrics_path =
        Filename.concat dir
          (Filename.chop_suffix rel ".trace.json" ^ ".metrics.txt")
      in
      Alcotest.(check bool) "metrics snapshot beside the trace" true
        (Sys.file_exists metrics_path);
      (* the manifest's entry carries the same relative path *)
      let mj =
        match Json.parse (read_file (Runner.manifest_path dir)) with
        | Ok j -> j
        | Error m -> Alcotest.fail m
      in
      let entries =
        match Json.member "entries" mj with
        | Some (Json.List es) -> es
        | _ -> Alcotest.fail "manifest entries missing"
      in
      Alcotest.(check bool) "manifest references the dump" true
        (List.exists
           (fun e -> Json.member "flight" e = Some (Json.String rel))
           entries)

(* Fleet rollups: the manifest embeds a per-suite aggregate whose counts
   and duration percentiles are consistent with the entries. *)
let test_manifest_rollup () =
  let dir = fresh_dir () in
  let m = Runner.run ~config:(config dir) (List.map Runner.job small) in
  Alcotest.(check bool) "suite ok" true (Runner.all_ok m);
  let r = Runner.rollup_json m in
  let mem k v =
    match Json.member k v with
    | Some x -> x
    | None -> Alcotest.failf "rollup missing %S" k
  in
  let jint k v =
    match Json.to_int_opt (mem k v) with
    | Some n -> n
    | None -> Alcotest.failf "rollup %s not an int" k
  in
  let jfloat k v =
    match Json.to_float_opt (mem k v) with
    | Some f -> f
    | None -> Alcotest.failf "rollup %s not a number" k
  in
  Alcotest.(check int) "jobs" 3 (jint "jobs" r);
  Alcotest.(check int) "attempts" 3 (jint "attempts_total" r);
  Alcotest.(check bool) "throughput positive" true (jfloat "jobs_per_s" r > 0.);
  let d = mem "duration_s" r in
  let p50 = jfloat "p50" d and p95 = jfloat "p95" d and mx = jfloat "max" d in
  Alcotest.(check bool) "percentiles ordered" true (p50 <= p95 && p95 <= mx);
  Alcotest.(check bool) "max matches slowest entry" true
    (List.exists
       (fun (e : Runner.entry) -> abs_float (e.Runner.duration_s -. mx) < 1e-9)
       m.Runner.entries);
  (* the manifest file embeds the same rollup *)
  (match Json.parse (read_file (Runner.manifest_path dir)) with
  | Error m -> Alcotest.fail m
  | Ok j ->
      Alcotest.(check bool) "manifest has rollup" true
        (Json.member "rollup" j <> None));
  (* empty-duration guard: an interrupted manifest with no entries still
     rolls up without raising *)
  let empty =
    {
      Runner.entries = [];
      quarantined = 0;
      wall_s = 0.;
      interrupted = true;
      cache_hits = 0;
      cache_misses = 0;
    }
  in
  match Runner.rollup_json empty with
  | Json.Obj _ -> ()
  | _ -> Alcotest.fail "empty rollup not an object"

let test_stall_deadline_timeout () =
  let dir = fresh_dir () in
  let chaos = Exec_fault.plan ~stall_pct:100 ~stall_s:10. () in
  let t0 = Unix.gettimeofday () in
  let m =
    Runner.run
      ~config:(config ~retries:0 ~deadline_s:0.3 ~chaos dir)
      [ Runner.job "vectoradd" ]
  in
  Alcotest.(check (list string)) "timed out" [ "timeout" ] (outcome_names m);
  Alcotest.(check bool)
    "SIGKILL preempted the 10s stall" true
    (Unix.gettimeofday () -. t0 < 5.)

(* ------------------------------------------------------------------ *)
(* Journal: corruption quarantine and resume                            *)

let test_resume_skips_and_quarantines () =
  let dir = fresh_dir () in
  let jobs = List.map Runner.job small in
  let m1 = Runner.run ~config:(config dir) jobs in
  Alcotest.(check bool) "first pass ok" true (Runner.all_ok m1);
  (* sabotage: a torn line, foreign JSON, and one success whose report
     artifact disappears — all must quarantine, none may be fatal *)
  let oc = open_out_gen [ Open_append ] 0o644 (Journal.path dir) in
  output_string oc "{\"schema\":\"tfsuite-job/1\",\"id\":\"torn";
  output_string oc "\n{\"note\":\"not a job record\"}\n";
  close_out oc;
  Sys.remove (Filename.concat dir "reports/bfs.w32.O1.s1.json");
  let m2 = Runner.run ~config:(config ~resume:true dir) jobs in
  Alcotest.(check bool) "second pass ok" true (Runner.all_ok m2);
  Alcotest.(check int)
    "torn line + foreign record + invalidated success" 3 m2.Runner.quarantined;
  let by_source s =
    List.filter (fun e -> e.Runner.source = s) m2.Runner.entries
  in
  Alcotest.(check int) "two skipped" 2 (List.length (by_source Runner.Resumed));
  Alcotest.(check (list string))
    "only the invalidated job re-ran" [ "bfs.w32.O1.s1" ]
    (List.map (fun e -> e.Runner.id) (by_source Runner.Fresh));
  Alcotest.(check bool)
    "quarantine file exists" true
    (Sys.file_exists (Journal.quarantine_path dir))

(* Kill the supervisor itself mid-suite (the journal's reason to exist):
   run it in a forked child, SIGKILL it once the journal shows progress,
   then resume in-process and check only incomplete jobs re-ran. *)
let test_sigkill_resume () =
  let dir = fresh_dir () in
  (* a 100%-stall plan makes every first attempt take ~0.2 s, giving the
     parent a window where some jobs are journalled and some are not *)
  let chaos =
    Exec_fault.plan ~stall_pct:100 ~stall_s:0.2 ~first_attempt_only:true ()
  in
  let jobs =
    List.map Runner.job [ "vectoradd"; "bfs"; "uncoalesced"; "rotate"; "user" ]
  in
  flush stdout;
  flush stderr;
  let child =
    match Unix.fork () with
    | 0 ->
        (try
           ignore
             (Runner.run ~config:(config ~parallelism:1 ~chaos dir) jobs)
         with _ -> ());
        Unix._exit 0
    | pid -> pid
  in
  let journal_lines () =
    if Sys.file_exists (Journal.path dir) then
      String.split_on_char '\n' (read_file (Journal.path dir))
      |> List.filter (fun l -> String.trim l <> "")
      |> List.length
    else 0
  in
  let deadline = Unix.gettimeofday () +. 30. in
  while journal_lines () < 2 && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.01
  done;
  let seen = journal_lines () in
  Alcotest.(check bool) "made progress before the kill" true (seen >= 2);
  Unix.kill child Sys.sigkill;
  ignore (Unix.waitpid [] child);
  let m = Runner.run ~config:(config ~resume:true dir) jobs in
  Alcotest.(check bool) "resume completed the suite" true (Runner.all_ok m);
  Alcotest.(check int) "all jobs accounted" 5 (List.length m.Runner.entries);
  let resumed =
    List.filter (fun e -> e.Runner.source = Runner.Resumed) m.Runner.entries
  in
  Alcotest.(check bool)
    "journalled jobs were skipped, incomplete jobs re-ran" true
    (List.length resumed >= 2 && List.length resumed < 5)

(* The journal's durability contract is "every line is whole or torn,
   never silently wrong": [Journal.append] is one write + fsync.  Emulate
   a crash at EVERY byte offset inside the final record and check the
   loader's accounting at each cut — valid prefix records always survive,
   the torn tail is quarantined (or, cut exactly before the newline, still
   parses), and nothing raises. *)
let test_journal_crash_at_any_byte () =
  let dir = fresh_dir () in
  let jobs = List.map Runner.job small in
  let m = Runner.run ~config:(config ~parallelism:1 dir) jobs in
  Alcotest.(check bool) "seed suite ok" true (Runner.all_ok m);
  let full = read_file (Journal.path dir) in
  let len = String.length full in
  Alcotest.(check bool) "journal ends in newline" true (full.[len - 1] = '\n');
  (* start of the last record's line *)
  let boundary = 1 + String.rindex_from full (len - 2) '\n' in
  for cut = boundary to len - 1 do
    let oc = open_out_bin (Journal.path dir) in
    output_string oc (String.sub full 0 cut);
    close_out oc;
    let l = Journal.load dir in
    let records = Hashtbl.length l.Journal.records in
    let expected_lines = if cut > boundary then 3 else 2 in
    Alcotest.(check bool)
      (Printf.sprintf "cut %d: prefix records survive" cut)
      true (records >= 2);
    Alcotest.(check int)
      (Printf.sprintf "cut %d: every line valid or quarantined" cut)
      expected_lines
      (records + l.Journal.quarantined)
  done;
  (* one representative torn cut, driven through a real resume: the torn
     job re-runs fresh, the intact two are skipped *)
  let cut = boundary + ((len - boundary) / 2) in
  let oc = open_out_bin (Journal.path dir) in
  output_string oc (String.sub full 0 cut);
  close_out oc;
  let m2 = Runner.run ~config:(config ~parallelism:1 ~resume:true dir) jobs in
  Alcotest.(check bool) "resume after torn tail ok" true (Runner.all_ok m2);
  Alcotest.(check int) "torn line quarantined" 1 m2.Runner.quarantined;
  let by_source s =
    List.filter (fun e -> e.Runner.source = s) m2.Runner.entries
  in
  Alcotest.(check int) "intact records skipped" 2
    (List.length (by_source Runner.Resumed));
  Alcotest.(check int) "torn job re-ran" 1
    (List.length (by_source Runner.Fresh))

(* [Runner.request_stop] mid-run (what the CLI's SIGINT handler calls):
   nothing new starts, in-flight work is journalled, the manifest says
   interrupted, and --resume completes exactly the dropped jobs.  Domains
   isolation + a stopper domain, so the whole thing runs [in_subprocess]
   to keep the parent fork-clean. *)
let test_interrupt_resume () =
  let dir = fresh_dir () in
  let jobs = List.map Runner.job small in
  (* every first attempt stalls 0.3 s: the stopper fires inside job 1's
     stall, so jobs 2 and 3 are never handed out *)
  let chaos =
    Exec_fault.plan ~stall_pct:100 ~stall_s:0.3 ~first_attempt_only:true ()
  in
  let stopper =
    Domain.spawn (fun () ->
        Unix.sleepf 0.1;
        Runner.request_stop ())
  in
  let m1 =
    Runner.run
      ~config:
        (config ~parallelism:1 ~isolation:Runner.Domains ~chaos dir)
      jobs
  in
  Domain.join stopper;
  Alcotest.(check bool) "manifest says interrupted" true m1.Runner.interrupted;
  Alcotest.(check bool) "interrupted run is not all_ok" false
    (Runner.all_ok m1);
  let done1 = List.length m1.Runner.entries in
  Alcotest.(check bool) "some jobs were dropped" true (done1 < 3);
  (* [run] resets the stop flag on entry, so the same process can resume *)
  let m2 =
    Runner.run
      ~config:
        (config ~parallelism:1 ~isolation:Runner.Domains ~resume:true dir)
      jobs
  in
  Alcotest.(check bool) "resume completed the suite" true (Runner.all_ok m2);
  Alcotest.(check int) "all jobs accounted" 3 (List.length m2.Runner.entries);
  Alcotest.(check int) "journalled work was not repeated" done1
    (List.length
       (List.filter
          (fun e -> e.Runner.source = Runner.Resumed)
          m2.Runner.entries))

(* ------------------------------------------------------------------ *)
(* Determinism under parallelism                                        *)

let test_parallel_determinism () =
  let jobs = List.map Runner.job small in
  let d1 = fresh_dir () and d4 = fresh_dir () in
  let m1 = Runner.run ~config:(config ~parallelism:1 d1) jobs in
  let m4 = Runner.run ~config:(config ~parallelism:4 d4) jobs in
  Alcotest.(check bool) "both ok" true (Runner.all_ok m1 && Runner.all_ok m4);
  List.iter
    (fun (e : Runner.entry) ->
      let rel = Option.get e.Runner.report_file in
      Alcotest.(check string)
        (Printf.sprintf "%s report identical at -j1 and -j4" e.Runner.id)
        (read_file (Filename.concat d1 rel))
        (read_file (Filename.concat d4 rel)))
    m1.Runner.entries

(* ------------------------------------------------------------------ *)
(* Backoff and execution-fault determinism                              *)

let test_backoff () =
  let d1 = Backoff.delay_s ~base:0.1 ~seed:42 ~attempt:1 in
  let d1' = Backoff.delay_s ~base:0.1 ~seed:42 ~attempt:1 in
  Alcotest.(check (float 0.)) "deterministic" d1 d1';
  Alcotest.(check bool) "jitter stays in [0.5x, 1.5x]" true
    (d1 >= 0.05 && d1 <= 0.15);
  let huge = Backoff.delay_s ~base:5. ~seed:1 ~attempt:20 in
  Alcotest.(check bool) "capped" true (huge <= Backoff.max_delay_s);
  Alcotest.check_raises "attempt is 1-based"
    (Invalid_argument "Backoff.delay_s: attempt is 1-based") (fun () ->
      ignore (Backoff.delay_s ~base:0.1 ~seed:1 ~attempt:0))

let test_exec_fault_determinism () =
  let p = Exec_fault.plan ~seed:9 ~crash_pct:50 ~stall_pct:25 () in
  for attempt = 1 to 1 do
    List.iter
      (fun job ->
        Alcotest.(check string)
          "same triple, same action"
          (Exec_fault.action_name (Exec_fault.decide p ~job ~attempt))
          (Exec_fault.action_name (Exec_fault.decide p ~job ~attempt)))
      [ "a.w32.O1.s1"; "b.w32.O1.s1"; "c.w32.O1.s1" ]
  done;
  (* first_attempt_only really does shield retries *)
  let always = Exec_fault.plan ~crash_pct:100 ~first_attempt_only:true () in
  Alcotest.(check string)
    "attempt 1 eligible" "crash"
    (Exec_fault.action_name (Exec_fault.decide always ~job:"x" ~attempt:1));
  Alcotest.(check string)
    "attempt 2 shielded" "none"
    (Exec_fault.action_name (Exec_fault.decide always ~job:"x" ~attempt:2));
  (* prefix scoping *)
  let scoped =
    Exec_fault.plan ~crash_pct:100 ~only_prefix:"bfs" ()
  in
  Alcotest.(check string)
    "prefix match" "crash"
    (Exec_fault.action_name
       (Exec_fault.decide scoped ~job:"bfs.w32.O1.s1" ~attempt:1));
  Alcotest.(check string)
    "prefix miss" "none"
    (Exec_fault.action_name
       (Exec_fault.decide scoped ~job:"pigz.w32.O1.s1" ~attempt:1))

let () =
  Alcotest.run "runner"
    [
      ( "jobs",
        [
          Alcotest.test_case "job_id" `Quick test_job_id;
          Alcotest.test_case "matrix" `Quick test_matrix;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "fork happy path" `Quick (check_happy Runner.Fork);
          Alcotest.test_case "domains happy path" `Quick (fun () ->
              in_subprocess (check_happy Runner.Domains));
          Alcotest.test_case "crash then recover" `Quick
            test_crash_then_recover;
          Alcotest.test_case "gave up" `Quick test_gave_up;
          Alcotest.test_case "crashed kind" `Quick test_crashed_kind;
          Alcotest.test_case "stall hits deadline" `Quick
            test_stall_deadline_timeout;
          Alcotest.test_case "flight dump on terminal failure" `Quick
            test_flight_dump_on_terminal_failure;
          Alcotest.test_case "manifest rollup" `Quick test_manifest_rollup;
        ] );
      ( "journal",
        [
          Alcotest.test_case "resume skips, corruption quarantined" `Quick
            test_resume_skips_and_quarantines;
          Alcotest.test_case "SIGKILL'd supervisor resumes" `Quick
            test_sigkill_resume;
          Alcotest.test_case "crash at any byte of the last record" `Quick
            test_journal_crash_at_any_byte;
          Alcotest.test_case "request_stop then resume" `Quick (fun () ->
              in_subprocess test_interrupt_resume);
        ] );
      ( "determinism",
        [
          Alcotest.test_case "reports identical under parallelism" `Quick
            test_parallel_determinism;
          Alcotest.test_case "backoff" `Quick test_backoff;
          Alcotest.test_case "exec faults replay" `Quick
            test_exec_fault_determinism;
        ] );
    ]
