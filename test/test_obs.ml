(* The observability stack: collector semantics (spans, counters,
   histograms, the disabled fast path), the Chrome-trace and Prometheus
   exporters, the structured logger, and the instrumentation the analysis
   pipeline emits end-to-end. *)

module Obs = Threadfuser_obs.Obs
module Log = Threadfuser_obs.Log
module Trace_export = Threadfuser_obs.Trace_export
module Prom = Threadfuser_obs.Prom
module Json = Threadfuser_report.Json
module Stats = Threadfuser_stats.Stats
module W = Threadfuser_workloads.Workload
module Registry = Threadfuser_workloads.Registry
module Analyzer = Threadfuser.Analyzer

(* Every test leaves the collector disabled and empty for the next one;
   the registries deliberately survive [reset]. *)
let with_collector f =
  Obs.reset ();
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset ())
    f

(* ------------------------------------------------------------------ *)
(* Collector                                                            *)

let test_counter_basics () =
  let c = Obs.Counter.make "tf_test_counter_basics" ~help:"test" in
  with_collector (fun () ->
      Obs.Counter.incr c;
      Obs.Counter.add c 41;
      Alcotest.(check int) "enabled counts" 42 (Obs.Counter.value c));
  (* after with_collector: reset zeroed it and the collector is off *)
  Alcotest.(check int) "reset zeroes" 0 (Obs.Counter.value c);
  Obs.Counter.incr c;
  Obs.Counter.add c 7;
  Alcotest.(check int) "disabled is a no-op" 0 (Obs.Counter.value c)

let test_counter_registry_idempotent () =
  let a = Obs.Counter.make "tf_test_counter_shared" in
  let b = Obs.Counter.make "tf_test_counter_shared" in
  with_collector (fun () ->
      Obs.Counter.incr a;
      Obs.Counter.incr b;
      Alcotest.(check int) "same underlying counter" 2 (Obs.Counter.value a))

let test_histogram_quantiles () =
  let h = Obs.Histogram.make "tf_test_histo_q" ~help:"test" in
  Alcotest.(check (float 0.0)) "empty quantile is 0" 0.0
    (Obs.Histogram.quantile h 0.5);
  with_collector (fun () ->
      let data = Array.init 100 (fun i -> float_of_int (i + 1)) in
      Array.iter (fun v -> Obs.Histogram.observe h v) data;
      Alcotest.(check int) "count" 100 (Obs.Histogram.count h);
      Alcotest.(check (float 1e-6)) "sum" 5050.0 (Obs.Histogram.sum h);
      (* quantiles agree with Stats.percentile over the same samples *)
      List.iter
        (fun q ->
          Alcotest.(check (float 1e-6))
            (Printf.sprintf "q=%.2f matches Stats.percentile" q)
            (Stats.percentile ~q data)
            (Obs.Histogram.quantile h q))
        [ 0.0; 0.5; 0.95; 0.99; 1.0 ])

let test_histogram_disabled () =
  let h = Obs.Histogram.make "tf_test_histo_off" in
  Obs.Histogram.observe h 3.0;
  Alcotest.(check int) "disabled observe is a no-op" 0 (Obs.Histogram.count h)

let test_span_nesting () =
  with_collector (fun () ->
      let v =
        Obs.span "outer"
          ~args:[ ("k", "v") ]
          (fun () ->
            Obs.span "inner" (fun () -> ());
            17)
      in
      Alcotest.(check int) "span returns the body's value" 17 v;
      let snap = Obs.snapshot () in
      let completes =
        List.filter_map
          (function
            | Obs.Complete { name; ts; dur; _ } -> Some (name, ts, dur)
            | Obs.Instant _ -> None)
          snap.Obs.events
      in
      Alcotest.(check int) "two complete events" 2 (List.length completes);
      let name_in, ts_in, dur_in = List.nth completes 0 in
      let name_out, ts_out, dur_out = List.nth completes 1 in
      (* chronological by start: outer starts first *)
      Alcotest.(check string) "outer first by start" "outer" name_out;
      Alcotest.(check string) "inner second" "inner" name_in;
      Alcotest.(check bool) "inner nests inside outer" true
        (ts_in >= ts_out && ts_in +. dur_in <= ts_out +. dur_out +. 1.0))

let test_span_exception_safe () =
  with_collector (fun () ->
      (try Obs.span "boom" (fun () -> failwith "x") with Failure _ -> ());
      let snap = Obs.snapshot () in
      Alcotest.(check int) "span recorded despite the raise" 1
        (List.length snap.Obs.events))

let test_span_disabled_records_nothing () =
  Obs.reset ();
  Obs.span "quiet" (fun () -> ());
  Obs.instant ~track:Obs.divergence_track "quiet instant";
  let snap = Obs.snapshot () in
  Alcotest.(check int) "no events when disabled" 0 (List.length snap.Obs.events)

let test_event_cap () =
  with_collector (fun () ->
      Obs.set_max_events 10;
      Fun.protect
        ~finally:(fun () -> Obs.set_max_events 500_000)
        (fun () ->
          for _ = 1 to 25 do
            Obs.instant ~track:Obs.memory_track "e"
          done;
          let snap = Obs.snapshot () in
          Alcotest.(check int) "events capped" 10 (List.length snap.Obs.events);
          Alcotest.(check int) "drops counted" 15 snap.Obs.events_dropped))

(* ------------------------------------------------------------------ *)
(* Exporters                                                            *)

let member k = function
  | Json.Obj fields -> List.assoc_opt k fields
  | _ -> None

let test_chrome_export_well_formed () =
  let c = Obs.Counter.make "tf_test_export_counter" in
  with_collector (fun () ->
      Obs.Counter.incr c;
      Obs.span "phase_a" (fun () ->
          Obs.instant ~track:Obs.divergence_track "split"
            ~args:[ ("lanes", "4") ]);
      let s = Trace_export.to_string (Obs.snapshot ()) in
      match Json.parse s with
      | Error m -> Alcotest.failf "exporter emitted invalid JSON: %s" m
      | Ok doc -> (
          match member "traceEvents" doc with
          | Some (Json.List events) ->
              let names =
                List.filter_map
                  (fun e ->
                    match member "name" e with
                    | Some (Json.String n) -> Some n
                    | _ -> None)
                  events
              in
              List.iter
                (fun expected ->
                  Alcotest.(check bool)
                    (expected ^ " present") true
                    (List.mem expected names))
                [ "process_name"; "thread_name"; "phase_a"; "split" ];
              (* the instant carries its args and the instant phase *)
              let split =
                List.find
                  (fun e -> member "name" e = Some (Json.String "split"))
                  events
              in
              Alcotest.(check bool) "instant phase" true
                (member "ph" split = Some (Json.String "i"));
              (match member "args" split with
              | Some (Json.Obj args) ->
                  Alcotest.(check bool) "instant args survive" true
                    (List.assoc_opt "lanes" args = Some (Json.String "4"))
              | _ -> Alcotest.fail "instant lost its args")
          | _ -> Alcotest.fail "no traceEvents array"))

let test_chrome_export_escaping () =
  with_collector (fun () ->
      Obs.span "quote\"and\\slash\nnewline" (fun () -> ());
      match Json.validate (Trace_export.to_string (Obs.snapshot ())) with
      | Ok () -> ()
      | Error m -> Alcotest.failf "escaping broke the JSON: %s" m)

(* The full pipeline's emitted Chrome/Perfetto trace — including the new
   blame-attribution instants — must re-parse with the report JSON parser
   and keep the attribution payload intact. *)
let test_trace_export_attribution_roundtrip () =
  let w = Registry.find "hdsearch-mid" in
  let tr = W.trace_cpu w in
  with_collector (fun () ->
      ignore (Analyzer.analyze tr.W.prog tr.W.traces);
      let s = Trace_export.to_string (Obs.snapshot ()) in
      match Json.parse s with
      | Error m -> Alcotest.failf "emitted trace does not re-parse: %s" m
      | Ok doc -> (
          match member "traceEvents" doc with
          | Some (Json.List events) ->
              let sites =
                List.filter
                  (fun e ->
                    member "name" e = Some (Json.String "divergence site"))
                  events
              in
              Alcotest.(check bool) "attribution instants exported" true
                (sites <> []);
              List.iter
                (fun e ->
                  Alcotest.(check bool) "instant phase" true
                    (member "ph" e = Some (Json.String "i"));
                  match member "args" e with
                  | Some (Json.Obj args) ->
                      List.iter
                        (fun k ->
                          Alcotest.(check bool) ("arg " ^ k) true
                            (List.mem_assoc k args))
                        [ "func"; "block"; "kind"; "lost_lane_slots" ]
                  | _ -> Alcotest.fail "attribution instant lost its args")
                sites;
              Alcotest.(check bool) "memory attribution exported" true
                (List.exists
                   (fun e ->
                     member "name" e = Some (Json.String "memory site"))
                   events)
          | _ -> Alcotest.fail "no traceEvents array"))

let contains_sub text needle =
  let nl = String.length needle and tl = String.length text in
  let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
  go 0

(* Prometheus text exposition escaping: metric names sanitize to the legal
   charset, HELP text escapes backslash and newline, label values escape
   backslash, double quote and newline. *)
let test_prometheus_escaping () =
  Alcotest.(check string) "name sanitized" "tf_weird_name_0"
    (Prom.sanitize "tf.weird name-0");
  Alcotest.(check string) "leading digit sanitized" "_f" (Prom.sanitize "0f");
  Alcotest.(check string) "help escapes" "line1\\nback\\\\slash"
    (Prom.escape_help "line1\nback\\slash");
  Alcotest.(check string) "label value escapes" "a\\\"b\\\\c\\nd"
    (Prom.escape_label_value "a\"b\\c\nd");
  let c =
    Obs.Counter.make "tf.test prom-escape"
      ~help:"first line\nsecond \\ line"
  in
  with_collector (fun () ->
      Obs.Counter.incr c;
      let text = Prom.to_string (Obs.snapshot ()) in
      Alcotest.(check bool) "sanitized name in exposition" true
        (contains_sub text "tf_test_prom_escape 1");
      Alcotest.(check bool) "escaped help in exposition" true
        (contains_sub text
           "# HELP tf_test_prom_escape first line\\nsecond \\\\ line");
      (* the raw newline must not have split the HELP line *)
      String.split_on_char '\n' text
      |> List.iter (fun line ->
             if line <> "" && line.[0] <> '#' then
               match String.rindex_opt line ' ' with
               | None -> Alcotest.failf "unparseable exposition line: %s" line
               | Some i ->
                   Alcotest.(check bool) ("numeric sample: " ^ line) true
                     (float_of_string_opt
                        (String.sub line (i + 1) (String.length line - i - 1))
                     <> None)))

let test_prometheus_export () =
  let c = Obs.Counter.make "tf_test_prom_counter" ~help:"a test counter" in
  let h = Obs.Histogram.make "tf_test_prom_histo" ~help:"a test histogram" in
  with_collector (fun () ->
      Obs.Counter.add c 5;
      List.iter (fun v -> Obs.Histogram.observe h v) [ 0.5; 3.0; 100.0 ];
      let text = Prom.to_string (Obs.snapshot ()) in
      let contains needle =
        let nl = String.length needle and tl = String.length text in
        let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
        go 0
      in
      List.iter
        (fun needle ->
          Alcotest.(check bool) (needle ^ " present") true (contains needle))
        [
          "# TYPE tf_test_prom_counter counter";
          "# HELP tf_test_prom_counter a test counter";
          "tf_test_prom_counter 5";
          "# TYPE tf_test_prom_histo histogram";
          "tf_test_prom_histo_bucket{le=\"+Inf\"} 3";
          "tf_test_prom_histo_count 3";
          "tf_test_prom_histo_sum 103.5";
          "tf_test_prom_histo_p50";
        ];
      (* every non-comment line is "name[{labels}] value" *)
      String.split_on_char '\n' text
      |> List.iter (fun line ->
             if line <> "" && line.[0] <> '#' then
               match String.rindex_opt line ' ' with
               | None -> Alcotest.failf "unparseable exposition line: %s" line
               | Some i -> (
                   let v = String.sub line (i + 1) (String.length line - i - 1) in
                   match float_of_string_opt v with
                   | Some _ -> ()
                   | None -> Alcotest.failf "non-numeric sample: %s" line)))

(* ------------------------------------------------------------------ *)
(* Logger                                                               *)

let with_log_buffer f =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  let saved = Log.level () in
  Log.set_formatter ppf;
  Fun.protect
    ~finally:(fun () ->
      Log.set_formatter Format.err_formatter;
      match saved with Some l -> Log.set_level l | None -> Log.set_quiet ())
    (fun () ->
      f ();
      Format.pp_print_flush ppf ();
      Buffer.contents buf)

let test_log_threshold () =
  let out =
    with_log_buffer (fun () ->
        Log.set_level Log.Warn;
        Log.debug "hidden debug";
        Log.info "hidden info";
        Log.warn "visible warn";
        Log.err "visible error")
  in
  Alcotest.(check string) "only warn and error pass"
    "threadfuser: [warn] visible warn\nthreadfuser: [error] visible error\n"
    out

let test_log_fields_and_format () =
  let out =
    with_log_buffer (fun () ->
        Log.set_level Log.Debug;
        Log.info "replay %d done" 3
          ~fields:[ ("warp", "3"); ("diag", "bad lane") ])
  in
  Alcotest.(check string) "fields render as key=value, quoting spaces"
    "threadfuser: [info] replay 3 done warp=3 diag=\"bad lane\"\n" out

let test_log_quiet () =
  let out =
    with_log_buffer (fun () ->
        Log.set_quiet ();
        Log.err "not even errors")
  in
  Alcotest.(check string) "quiet silences everything" "" out

let test_log_of_string () =
  List.iter
    (fun (s, expect) ->
      Alcotest.(check bool) ("of_string " ^ s) true (Log.of_string s = expect))
    [
      ("debug", Some Log.Debug);
      ("INFO", Some Log.Info);
      ("warning", Some Log.Warn);
      ("err", Some Log.Error);
      ("verbose", None);
    ]

(* ------------------------------------------------------------------ *)
(* Domain safety: hammer the collector and logger from real domains     *)

(* Counters are atomic, the event log and histograms mutex-guarded, and
   the logger emits each record under a lock — so four domains hammering
   everything at once must lose nothing and interleave nothing. *)
let test_domain_hammer () =
  let domains = 4 and per_domain = 5_000 in
  let c = Obs.Counter.make "tf_test_domain_hammer" in
  let h = Obs.Histogram.make "tf_test_domain_hammer_hist" in
  let tr = Obs.track "hammer" in
  let log_out =
    with_log_buffer (fun () ->
        Log.set_level Log.Info;
        with_collector (fun () ->
            let worker d () =
              for i = 1 to per_domain do
                Obs.Counter.incr c;
                Obs.Histogram.observe h (float_of_int i);
                if i mod 50 = 0 then begin
                  Obs.instant ~track:tr "tick"
                    ~args:[ ("domain", string_of_int d) ];
                  Obs.span ~track:tr "work" (fun () -> ())
                end;
                if i mod 100 = 0 then
                  Log.info "hammer record"
                    ~fields:
                      [ ("domain", string_of_int d); ("i", string_of_int i) ]
              done
            in
            let spawned =
              List.init (domains - 1) (fun d -> Domain.spawn (worker (d + 1)))
            in
            worker 0 ();
            List.iter Domain.join spawned;
            Alcotest.(check int) "no lost counter increments"
              (domains * per_domain) (Obs.Counter.value c);
            Alcotest.(check int) "no lost histogram samples"
              (domains * per_domain) (Obs.Histogram.count h);
            let snap = Obs.snapshot () in
            let mine =
              List.filter
                (function
                  | Obs.Complete { track; _ } | Obs.Instant { track; _ } ->
                      Obs.track_id track = Obs.track_id tr)
                snap.Obs.events
            in
            Alcotest.(check int) "no lost or torn events"
              (domains * (per_domain / 50) * 2)
              (List.length mine + snap.Obs.events_dropped)))
  in
  let lines =
    String.split_on_char '\n' log_out
    |> List.filter (fun l -> String.trim l <> "")
  in
  Alcotest.(check int) "no lost log records"
    (domains * (per_domain / 100))
    (List.length lines);
  List.iter
    (fun l ->
      if
        not
          (String.length l > 0
          && String.sub l 0 (min 12 (String.length l)) = "threadfuser:")
      then Alcotest.failf "interleaved log line: %S" l)
    lines

(* The analyzer's own instrumentation under domain-parallel replay: four
   domains recording into the shared collector must lose nothing, so
   counter totals, histogram sample counts, the event total and the
   Prometheus counter lines all match the serial replay exactly (event
   *order* and span durations are the only things allowed to differ). *)
let test_parallel_replay_obs_parity () =
  let bfs = Registry.find "bfs" in
  let tr = W.trace_cpu bfs in
  (* wall-clock counters (tf_par_merge_ns) are honest about elapsed time,
     which of course differs run to run — parity is about the
     deterministic counts *)
  let is_timing name =
    let suffix = "_ns" in
    let ln = String.length name and ls = String.length suffix in
    ln >= ls && String.sub name (ln - ls) ls = suffix
  in
  let capture domains =
    with_collector (fun () ->
        ignore
          (Analyzer.analyze
             ~options:{ Analyzer.default_options with Analyzer.domains }
             tr.W.prog tr.W.traces);
        let snap = Obs.snapshot () in
        let counters =
          List.filter
            (fun c -> not (is_timing (Obs.counter_name c)))
            snap.Obs.counters
        in
        let prom_counter_lines =
          String.split_on_char '\n' (Prom.to_string snap)
          |> List.filter (fun l ->
                 List.exists
                   (fun c ->
                     let n = Obs.counter_name c in
                     String.length l > String.length n
                     && String.sub l 0 (String.length n) = n)
                   counters)
          |> List.sort compare
        in
        ( List.map
            (fun c -> (Obs.counter_name c, Obs.Counter.value c))
            counters,
          List.map
            (fun h -> (Obs.histogram_name h, Obs.Histogram.count h))
            snap.Obs.histograms,
          List.length snap.Obs.events + snap.Obs.events_dropped,
          prom_counter_lines ))
  in
  let c1, h1, e1, p1 = capture 1 in
  let c4, h4, e4, p4 = capture 4 in
  Alcotest.(check (list (pair string int)))
    "counter totals match serial" (List.sort compare c1)
    (List.sort compare c4);
  Alcotest.(check (list (pair string int)))
    "histogram sample counts match serial" (List.sort compare h1)
    (List.sort compare h4);
  Alcotest.(check int) "no replay event lost or invented" e1 e4;
  Alcotest.(check (list string)) "prometheus counter lines match serial" p1 p4

(* A snapshot is a point-in-time copy: with four domains observing into a
   histogram while we snapshot and export, every exposition must stay
   internally consistent — the +Inf bucket is computed from the frozen
   samples and the count from the frozen count, so they can only agree if
   both were frozen together.  Against the old live-reference snapshot
   this test tears within a few iterations. *)
let test_snapshot_consistent_under_load () =
  let h = Obs.Histogram.make "tf_test_snapshot_load" ~help:"load test" in
  let c = Obs.Counter.make "tf_test_snapshot_load_ctr" in
  with_collector (fun () ->
      let stop = Atomic.make false in
      let spawned =
        List.init 3 (fun d ->
            Domain.spawn (fun () ->
                let i = ref 0 in
                while not (Atomic.get stop) do
                  (* burst-then-sleep: a tight spin on the collector mutex
                     starves the snapshotting domain (minutes instead of
                     seconds) and balloons the sample array to its
                     decimation cap, which makes every export expensive.
                     A few thousand writes per second is ample pressure to
                     catch a torn live-reference export. *)
                  for _ = 1 to 32 do
                    incr i;
                    Obs.Counter.incr c;
                    Obs.Histogram.observe h (float_of_int ((d * 31) + !i))
                  done;
                  Unix.sleepf 0.001
                done))
      in
      Fun.protect
        ~finally:(fun () ->
          Atomic.set stop true;
          List.iter Domain.join spawned)
        (fun () ->
          for _ = 1 to 50 do
            let snap = Obs.snapshot () in
            (* frozen instruments: retained samples and count agree *)
            List.iter
              (fun fh ->
                let count = Obs.Histogram.count fh in
                let retained = Array.length (Obs.Histogram.samples fh) in
                Alcotest.(check bool)
                  "frozen count >= retained samples" true (count >= retained))
              snap.Obs.histograms;
            (* the exposition invariant: +Inf bucket equals _count exactly *)
            let text = Prom.to_string snap in
            let lines = String.split_on_char '\n' text in
            let value_of prefix =
              List.find_map
                (fun l ->
                  if
                    String.length l > String.length prefix
                    && String.sub l 0 (String.length prefix) = prefix
                  then
                    float_of_string_opt
                      (String.sub l
                         (String.length prefix)
                         (String.length l - String.length prefix))
                  else None)
                lines
            in
            match
              ( value_of "tf_test_snapshot_load_bucket{le=\"+Inf\"} ",
                value_of "tf_test_snapshot_load_count " )
            with
            | Some inf, Some count ->
                Alcotest.(check (float 0.0))
                  "+Inf bucket equals _count in one frozen snapshot" count inf
            | _ -> () (* histogram still empty this early *)
          done))

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                      *)

let test_flight_ring_bounds () =
  (try
     ignore (Obs.Flight.create ~capacity:0 "bad");
     Alcotest.fail "capacity 0 accepted"
   with Invalid_argument _ -> ());
  let fl = Obs.Flight.create ~capacity:4 "ring" in
  Alcotest.(check string) "label" "ring" (Obs.Flight.label fl);
  Alcotest.(check int) "capacity" 4 (Obs.Flight.capacity fl);
  for i = 1 to 10 do
    Obs.Flight.note fl (Printf.sprintf "e%d" i)
  done;
  Alcotest.(check int) "recorded counts everything" 10 (Obs.Flight.recorded fl);
  Alcotest.(check int) "dropped = recorded - capacity" 6 (Obs.Flight.dropped fl);
  let names =
    List.map
      (function
        | Obs.Instant { name; _ } -> name
        | Obs.Complete { name; _ } -> name)
      (Obs.Flight.events fl)
  in
  Alcotest.(check (list string)) "last capacity events, oldest first"
    [ "e7"; "e8"; "e9"; "e10" ] names

let test_flight_records_while_disabled () =
  Obs.reset ();
  (* no with_collector: the ring must work with the collector off, since
     supervisors note lifecycle events for sessions they cannot reproduce *)
  let fl = Obs.Flight.create ~capacity:8 "cold" in
  Obs.Flight.note fl "lifecycle";
  Alcotest.(check int) "note lands with collector off" 1
    (Obs.Flight.recorded fl)

let test_flight_attach_taps_domain () =
  let fl = Obs.Flight.create ~capacity:64 "tap" in
  with_collector (fun () ->
      Obs.Flight.with_attached fl (fun () ->
          Obs.instant ~track:Obs.pipeline "tapped";
          Obs.span "tapped_span" (fun () -> ()));
      (* detached again: this event goes only to the global log *)
      Obs.instant ~track:Obs.pipeline "not_tapped";
      (* an unattached domain records nothing into the ring *)
      Domain.join
        (Domain.spawn (fun () ->
             Obs.instant ~track:Obs.pipeline "other_domain"));
      let names =
        List.map
          (function
            | Obs.Instant { name; _ } -> name
            | Obs.Complete { name; _ } -> name)
          (Obs.Flight.events fl)
      in
      Alcotest.(check (list string))
        "ring holds exactly the attached domain's events"
        [ "tapped"; "tapped_span" ] names;
      Alcotest.(check int) "global log saw all four" 4
        (List.length (Obs.snapshot ()).Obs.events))

let test_flight_snapshot_roundtrip () =
  let c = Obs.Counter.make "tf_test_flight_ctr" ~help:"flight test" in
  with_collector (fun () ->
      let fl = Obs.Flight.create ~capacity:4 "dump" in
      Obs.Counter.add c 3;
      for i = 1 to 6 do
        Obs.Flight.note fl ~args:[ ("i", string_of_int i) ]
          (Printf.sprintf "n%d" i)
      done;
      let snap = Obs.flight_snapshot fl in
      Alcotest.(check int) "snapshot events come from the ring" 4
        (List.length snap.Obs.events);
      Alcotest.(check int) "snapshot dropped comes from the ring" 2
        snap.Obs.events_dropped;
      (* instruments are the global collector's *)
      Alcotest.(check bool) "global counters present" true
        (List.exists
           (fun fc -> Obs.counter_name fc = "tf_test_flight_ctr")
           snap.Obs.counters);
      (* the dump payload: Chrome trace re-parses and keeps the ring's
         events; the metrics snapshot is a valid exposition *)
      match Json.parse (Trace_export.to_string snap) with
      | Error m -> Alcotest.failf "flight trace does not re-parse: %s" m
      | Ok doc -> (
          match member "traceEvents" doc with
          | Some (Json.List events) ->
              let names =
                List.filter_map
                  (fun e ->
                    match member "name" e with
                    | Some (Json.String n) -> Some n
                    | _ -> None)
                  events
              in
              List.iter
                (fun n ->
                  Alcotest.(check bool) (n ^ " survives the dump") true
                    (List.mem n names))
                [ "n3"; "n4"; "n5"; "n6" ];
              Alcotest.(check bool) "overwritten events are gone" false
                (List.mem "n1" names)
          | _ -> Alcotest.fail "no traceEvents array"))

(* ------------------------------------------------------------------ *)
(* Always-emitted exposition families                                   *)

let test_prometheus_always_emitted () =
  Obs.reset ();
  (* collector off and empty: the standing families must still be there *)
  let text = Prom.to_string (Obs.snapshot ()) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " present") true
        (contains_sub text needle))
    [
      "# TYPE tf_obs_events_dropped_total counter";
      "# HELP tf_obs_events_dropped_total";
      "tf_obs_events_dropped_total 0";
      "# TYPE tf_build_info gauge";
      Printf.sprintf "tf_build_info{version=\"%s\",ocaml=\"%s\"} 1"
        (Prom.escape_label_value Prom.version)
        (Prom.escape_label_value Sys.ocaml_version);
      "# TYPE tf_uptime_seconds gauge";
      "tf_uptime_seconds ";
    ];
  (* uptime is the snapshot's collector-clock age, in seconds *)
  let snap = Obs.snapshot () in
  Alcotest.(check bool) "uptime is non-negative" true (snap.Obs.taken_us >= 0.0);
  (* a dropped count > 0 is reported too *)
  let dropped_text =
    with_collector (fun () ->
        Obs.set_max_events 2;
        Fun.protect
          ~finally:(fun () -> Obs.set_max_events 500_000)
          (fun () ->
            for _ = 1 to 5 do
              Obs.instant ~track:Obs.pipeline "x"
            done;
            Prom.to_string (Obs.snapshot ())))
  in
  Alcotest.(check bool) "non-zero drops exported" true
    (contains_sub dropped_text "tf_obs_events_dropped_total 3")

(* ------------------------------------------------------------------ *)
(* End-to-end: the instrumented pipeline                                *)

let test_pipeline_emits_phases () =
  let bfs = Registry.find "bfs" in
  let tr = W.trace_cpu bfs in
  with_collector (fun () ->
      ignore (Analyzer.analyze tr.W.prog tr.W.traces);
      let snap = Obs.snapshot () in
      let phase_names =
        List.filter_map
          (function
            | Obs.Complete { name; track; _ }
              when Obs.track_id track = Obs.track_id Obs.pipeline ->
                Some name
            | _ -> None)
          snap.Obs.events
      in
      List.iter
        (fun phase ->
          Alcotest.(check bool) ("phase " ^ phase) true
            (List.mem phase phase_names))
        [ "dcfg"; "ipdom"; "warp_formation"; "replay"; "coalesce" ];
      (* bfs diverges, so the replay must emit warp spans and divergence
         instants, and the core counters must move *)
      let warp_spans =
        List.exists
          (function
            | Obs.Complete { track; _ } ->
                Obs.track_id track = Obs.track_id Obs.replay_track
            | _ -> false)
          snap.Obs.events
      in
      Alcotest.(check bool) "per-warp replay spans" true warp_spans;
      let splits =
        List.exists
          (function
            | Obs.Instant { name = "divergence split"; _ } -> true
            | _ -> false)
          snap.Obs.events
      in
      Alcotest.(check bool) "divergence instants" true splits;
      let value name =
        let c = Obs.Counter.make name in
        Obs.Counter.value c
      in
      Alcotest.(check bool) "warps counted" true
        (value "tf_warps_replayed_total" > 0);
      Alcotest.(check bool) "blocks counted" true
        (value "tf_blocks_executed_total" > 0);
      Alcotest.(check bool) "mem instrs counted" true
        (value "tf_mem_instrs_total" > 0))

let test_pipeline_disabled_is_silent () =
  let bfs = Registry.find "bfs" in
  let tr = W.trace_cpu bfs in
  Obs.reset ();
  ignore (Analyzer.analyze tr.W.prog tr.W.traces);
  let snap = Obs.snapshot () in
  Alcotest.(check int) "no events with the collector off" 0
    (List.length snap.Obs.events)

let () =
  Alcotest.run "obs"
    [
      ( "collector",
        [
          Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "counter registry idempotent" `Quick
            test_counter_registry_idempotent;
          Alcotest.test_case "histogram quantiles" `Quick
            test_histogram_quantiles;
          Alcotest.test_case "histogram disabled" `Quick test_histogram_disabled;
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "span exception safety" `Quick
            test_span_exception_safe;
          Alcotest.test_case "disabled records nothing" `Quick
            test_span_disabled_records_nothing;
          Alcotest.test_case "event cap" `Quick test_event_cap;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome trace well-formed" `Quick
            test_chrome_export_well_formed;
          Alcotest.test_case "chrome trace escaping" `Quick
            test_chrome_export_escaping;
          Alcotest.test_case "attribution events round-trip" `Quick
            test_trace_export_attribution_roundtrip;
          Alcotest.test_case "prometheus exposition" `Quick
            test_prometheus_export;
          Alcotest.test_case "prometheus escaping" `Quick
            test_prometheus_escaping;
          Alcotest.test_case "always-emitted families" `Quick
            test_prometheus_always_emitted;
        ] );
      ( "flight",
        [
          Alcotest.test_case "ring bounds and drop accounting" `Quick
            test_flight_ring_bounds;
          Alcotest.test_case "records with collector off" `Quick
            test_flight_records_while_disabled;
          Alcotest.test_case "attach taps the calling domain" `Quick
            test_flight_attach_taps_domain;
          Alcotest.test_case "flight snapshot round-trips" `Quick
            test_flight_snapshot_roundtrip;
        ] );
      ( "log",
        [
          Alcotest.test_case "threshold" `Quick test_log_threshold;
          Alcotest.test_case "fields" `Quick test_log_fields_and_format;
          Alcotest.test_case "quiet" `Quick test_log_quiet;
          Alcotest.test_case "of_string" `Quick test_log_of_string;
        ] );
      ( "domains",
        [
          Alcotest.test_case "four-domain hammer loses nothing" `Quick
            test_domain_hammer;
          Alcotest.test_case "snapshot consistent under load" `Quick
            test_snapshot_consistent_under_load;
          Alcotest.test_case "parallel replay obs parity" `Quick
            test_parallel_replay_obs_parity;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "emits phase spans and counters" `Quick
            test_pipeline_emits_phases;
          Alcotest.test_case "disabled pipeline is silent" `Quick
            test_pipeline_disabled_is_silent;
        ] );
    ]
