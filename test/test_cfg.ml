(* Tests for dynamic CFG construction, dominators and IPDOM analysis. *)

open Threadfuser_isa
open Threadfuser_prog
module Machine = Threadfuser_machine.Machine
module Dcfg = Threadfuser_cfg.Dcfg
module Ipdom = Threadfuser_cfg.Ipdom
module Dominators = Threadfuser_cfg.Dominators

(* -- Dominators vs brute force ------------------------------------------ *)

(* Brute-force dominator sets by dataflow iteration. *)
let brute_dom_sets ~n ~entry ~succs =
  let full = List.init n (fun i -> i) in
  let doms = Array.make n full in
  doms.(entry) <- [ entry ];
  let preds = Array.make n [] in
  for v = 0 to n - 1 do
    List.iter (fun s -> preds.(s) <- v :: preds.(s)) (succs v)
  done;
  let changed = ref true in
  while !changed do
    changed := false;
    for v = 0 to n - 1 do
      if v <> entry then begin
        let inter =
          match preds.(v) with
          | [] -> full
          | p :: ps ->
              List.fold_left
                (fun acc q -> List.filter (fun x -> List.mem x doms.(q)) acc)
                doms.(p) ps
        in
        let next = v :: List.filter (fun x -> x <> v) inter in
        if List.sort compare next <> List.sort compare doms.(v) then begin
          doms.(v) <- next;
          changed := true
        end
      end
    done
  done;
  doms

(* idom from dominator sets: the strict dominator dominated by all other
   strict dominators. *)
let brute_idom dom_sets v =
  let strict = List.filter (fun x -> x <> v) dom_sets.(v) in
  List.find_opt
    (fun u -> List.for_all (fun w -> List.mem w dom_sets.(u)) strict)
    strict

(* Random graph where node 0 is entry and every node is reachable: a spine
   0->1->...->n-1 plus random extra edges. *)
let gen_graph =
  let open QCheck.Gen in
  let* n = int_range 2 12 in
  let* extra =
    list_size (int_bound (2 * n))
      (let* a = int_bound (n - 1) in
       let* b = int_bound (n - 1) in
       return (a, b))
  in
  let succs = Array.make n [] in
  for i = 0 to n - 2 do
    succs.(i) <- [ i + 1 ]
  done;
  List.iter
    (fun (a, b) -> if not (List.mem b succs.(a)) then succs.(a) <- b :: succs.(a))
    extra;
  return (n, Array.map (List.sort compare) succs)

let prop_idom_matches_brute_force =
  QCheck.Test.make ~name:"CHK idom = brute-force idom" ~count:300
    (QCheck.make gen_graph) (fun (n, succs) ->
      let preds = Array.make n [] in
      Array.iteri (fun v ss -> List.iter (fun s -> preds.(s) <- v :: preds.(s)) ss) succs;
      let d =
        Dominators.compute ~n ~entry:0
          ~succs:(fun v -> succs.(v))
          ~preds:(fun v -> preds.(v))
      in
      let sets = brute_dom_sets ~n ~entry:0 ~succs:(fun v -> succs.(v)) in
      let ok = ref true in
      for v = 1 to n - 1 do
        let expect = brute_idom sets v in
        let got = if d.Dominators.idom.(v) < 0 then None else Some d.Dominators.idom.(v) in
        (* every node is reachable here, so idom must exist *)
        if got <> expect then ok := false
      done;
      !ok)

let prop_entry_self_idom =
  QCheck.Test.make ~name:"entry is its own idom" ~count:100
    (QCheck.make gen_graph) (fun (n, succs) ->
      let preds = Array.make n [] in
      Array.iteri (fun v ss -> List.iter (fun s -> preds.(s) <- v :: preds.(s)) ss) succs;
      let d =
        Dominators.compute ~n ~entry:0
          ~succs:(fun v -> succs.(v))
          ~preds:(fun v -> preds.(v))
      in
      d.Dominators.idom.(0) = 0)

(* -- DCFG from traces ---------------------------------------------------- *)

(* worker: diverge on arg parity, then reconverge and return *)
let diamond_worker =
  Build.(
    func "worker"
      [
        mov (reg 1) (reg 0);
        and_ (reg 1) (imm 1);
        if_ Cond.Eq (reg 1) (imm 0)
          ~then_:[ mov (reg 2) (imm 10) ]
          ~else_:[ mov (reg 2) (imm 20) ]
          ();
        ret;
      ])

let run_diamond n =
  let prog = Program.assemble [ diamond_worker ] in
  let m = Machine.create prog in
  let r =
    Machine.run_workers m ~worker:"worker" ~args:(Array.init n (fun i -> [ i ]))
  in
  (prog, r.Machine.traces)

let test_dcfg_diamond_edges () =
  let prog, traces = run_diamond 2 in
  let dcfgs = Dcfg.of_traces prog traces in
  let g = dcfgs.(0) in
  (* blocks: 0 cond, 1 then, 2 else, 3 join(ret); exit = 4 *)
  Alcotest.(check int) "n_blocks" 4 g.Dcfg.n_blocks;
  let sorted l = List.sort compare l in
  Alcotest.(check (list int)) "cond succs" [ 1; 2 ] (sorted g.Dcfg.succs.(0));
  Alcotest.(check (list int)) "then succs" [ 3 ] (sorted g.Dcfg.succs.(1));
  Alcotest.(check (list int)) "else succs" [ 3 ] (sorted g.Dcfg.succs.(2));
  Alcotest.(check (list int)) "join to exit" [ 4 ] (sorted g.Dcfg.succs.(3))

let test_dcfg_one_thread_partial () =
  (* with a single even thread, only the then-path is observed *)
  let prog, traces = run_diamond 1 in
  let g = (Dcfg.of_traces prog traces).(0) in
  Alcotest.(check (list int)) "only then edge" [ 1 ] (List.sort compare g.Dcfg.succs.(0));
  Alcotest.(check bool) "else unobserved" false g.Dcfg.observed.(2)

let test_ipdom_diamond () =
  let prog, traces = run_diamond 4 in
  let dcfgs = Dcfg.of_traces prog traces in
  let ip = Ipdom.compute dcfgs.(0) in
  Alcotest.(check int) "reconvergence of cond is join" 3
    (Ipdom.reconvergence_point ip 0);
  Alcotest.(check int) "join reconverges at exit" 4
    (Ipdom.reconvergence_point ip 3);
  Alcotest.(check bool) "join postdominates cond" true (Ipdom.post_dominates ip 3 0);
  Alcotest.(check bool) "then does not postdominate cond" false
    (Ipdom.post_dominates ip 1 0)

let test_ipdom_loop () =
  (* while loop: divergence at the loop head reconverges at loop exit *)
  let worker =
    Build.(
      func "worker"
        [
          mov (reg 1) (imm 0);
          while_ Cond.Lt (reg 1) (reg 0) [ add (reg 1) (imm 1) ];
          ret;
        ])
  in
  let prog = Program.assemble [ worker ] in
  let m = Machine.create prog in
  let r =
    Machine.run_workers m ~worker:"worker"
      ~args:[| [ 0 ]; [ 1 ]; [ 3 ]; [ 7 ] |]
  in
  let dcfgs = Dcfg.of_traces prog r.Machine.traces in
  let ip = Ipdom.compute dcfgs.(0) in
  (* blocks: 0 [mov] 1 head[cmp;jcc] 2 body[add;jmp] 3 [ret] *)
  Alcotest.(check int) "head reconv" 3 (Ipdom.reconvergence_point ip 1);
  Alcotest.(check int) "body reconv" 1 (Ipdom.reconvergence_point ip 2)

let test_call_boundaries_per_function () =
  (* callee's blocks must not leak into the caller's DCFG *)
  let prog =
    Program.assemble
      [
        Build.func "leaf" Build.[ mov (reg 2) (imm 1); ret ];
        Build.func "root" Build.[ call "leaf"; mov (reg 3) (imm 2); ret ];
      ]
  in
  let m = Machine.create prog in
  let r = Machine.run_workers m ~worker:"root" ~args:[| [] |] in
  let dcfgs = Dcfg.of_traces prog r.Machine.traces in
  let root = Program.find_func prog "root" and leaf = Program.find_func prog "leaf" in
  (* root: b0 [call] -> b1 [mov; ret] -> exit *)
  Alcotest.(check (list int)) "call falls to continuation" [ 1 ]
    (List.sort compare dcfgs.(root).Dcfg.succs.(0));
  Alcotest.(check (list int)) "leaf body to exit" [ 1 ]
    (List.sort compare dcfgs.(leaf).Dcfg.succs.(0))

let () =
  Alcotest.run "cfg"
    [
      ( "dominators",
        [
          QCheck_alcotest.to_alcotest prop_idom_matches_brute_force;
          QCheck_alcotest.to_alcotest prop_entry_self_idom;
        ] );
      ( "dcfg",
        [
          Alcotest.test_case "diamond edges" `Quick test_dcfg_diamond_edges;
          Alcotest.test_case "partial observation" `Quick test_dcfg_one_thread_partial;
          Alcotest.test_case "call boundaries" `Quick test_call_boundaries_per_function;
        ] );
      ( "ipdom",
        [
          Alcotest.test_case "diamond" `Quick test_ipdom_diamond;
          Alcotest.test_case "loop" `Quick test_ipdom_loop;
        ] );
    ]
