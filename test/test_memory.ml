(* Tests for the paged memory model: widths, endianness, page-crossing
   accesses, host helpers, and sparsity. *)

open Threadfuser_isa
module Memory = Threadfuser_machine.Memory
module Layout = Threadfuser_machine.Layout

let test_zero_initialised () =
  let m = Memory.create () in
  Alcotest.(check int) "untouched w8" 0 (Memory.load m ~width:Width.W8 0x1234);
  Alcotest.(check int) "untouched byte" 0 (Memory.load_byte m 999_999_999)

let test_widths_roundtrip () =
  let m = Memory.create () in
  List.iter
    (fun (w, v, expect) ->
      Memory.store m ~width:w 0x4000 v;
      Alcotest.(check int)
        (Fmt.str "%a" Width.pp w)
        expect
        (Memory.load m ~width:w 0x4000))
    [
      (Width.W1, 0x1ff, 0xff);
      (Width.W2, 0x1ffff, 0xffff);
      (Width.W4, 0x1ffffffff, 0xffffffff);
      (Width.W8, 0x1234_5678_9abc, 0x1234_5678_9abc);
    ]

let test_little_endian () =
  let m = Memory.create () in
  Memory.store m ~width:Width.W8 0x4000 0x0807060504030201;
  for i = 0 to 7 do
    Alcotest.(check int) (Printf.sprintf "byte %d" i) (i + 1)
      (Memory.load_byte m (0x4000 + i))
  done

let test_page_crossing () =
  let m = Memory.create () in
  (* 4 KiB pages: an 8-byte store at page_end-4 spans two pages *)
  let addr = 0x5000 - 4 in
  Memory.store m ~width:Width.W8 addr 0x1122334455667788;
  Alcotest.(check int) "cross-page load" 0x1122334455667788
    (Memory.load m ~width:Width.W8 addr);
  (* the halves landed on the right pages *)
  Alcotest.(check int) "low half" 0x55667788 (Memory.load m ~width:Width.W4 addr);
  Alcotest.(check int) "high half" 0x11223344
    (Memory.load m ~width:Width.W4 (addr + 4))

let test_partial_overwrite () =
  let m = Memory.create () in
  Memory.store m ~width:Width.W8 0x4000 (-1);
  Memory.store m ~width:Width.W2 0x4002 0;
  Alcotest.(check int) "middle hole" 0xffff0000ffff
    (Memory.load m ~width:Width.W8 0x4000 land 0xffffffffffff)

let test_array_helpers () =
  let m = Memory.create () in
  let a = [| 3; 1; 4; 1; 5; 9; 2; 6 |] in
  Memory.store_array64 m 0x8000 a;
  Alcotest.(check (array int)) "roundtrip" a (Memory.load_array64 m 0x8000 8);
  Memory.store_string m 0x9000 "ocaml";
  Alcotest.(check int) "string byte" (Char.code 'a') (Memory.load_byte m 0x9002)

let test_sparsity () =
  let m = Memory.create () in
  Memory.store_byte m 0 1;
  Memory.store_byte m (Layout.stack_top 100 - 1) 1;
  Memory.store_byte m Layout.heap_base 1;
  (* touching three far-apart addresses allocates only a few pages *)
  Alcotest.(check bool) "sparse" true (Memory.touched_pages m <= 4)

let test_negative_address_rejected () =
  let m = Memory.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Memory: negative address")
    (fun () -> ignore (Memory.load_byte m (-1)))

let test_segments () =
  Alcotest.(check bool) "global" true (Layout.segment_of 0x20000 = Layout.Global);
  Alcotest.(check bool) "heap" true
    (Layout.segment_of (Layout.heap_base + 8) = Layout.Heap);
  Alcotest.(check bool) "stack" true
    (Layout.segment_of (Layout.stack_top 3 - 8) = Layout.Stack);
  (* thread regions do not overlap *)
  Alcotest.(check bool) "regions disjoint" true
    (Layout.stack_top 0 <= Layout.stack_low 1);
  Alcotest.(check bool) "tls inside stack region" true
    (Layout.tls_base 5 >= Layout.stack_low 5
    && Layout.tls_base 5 + Layout.tls_size < Layout.stack_top 5)

let prop_store_load_roundtrip =
  QCheck.Test.make ~name:"w8 store/load roundtrip at random addresses" ~count:300
    QCheck.(pair (int_bound 1_000_000) int)
    (fun (addr, v) ->
      let m = Memory.create () in
      Memory.store m ~width:Width.W8 addr v;
      Memory.load m ~width:Width.W8 addr = v)

let prop_disjoint_stores_independent =
  QCheck.Test.make ~name:"disjoint stores do not interfere" ~count:200
    QCheck.(triple (int_bound 100_000) (int_bound 100_000) (pair int int))
    (fun (a1, a2, (v1, v2)) ->
      QCheck.assume (abs (a1 - a2) >= 8);
      let m = Memory.create () in
      Memory.store m ~width:Width.W8 a1 v1;
      Memory.store m ~width:Width.W8 a2 v2;
      Memory.load m ~width:Width.W8 a1 = v1 && Memory.load m ~width:Width.W8 a2 = v2)

let () =
  Alcotest.run "memory"
    [
      ( "memory",
        [
          Alcotest.test_case "zero initialised" `Quick test_zero_initialised;
          Alcotest.test_case "widths" `Quick test_widths_roundtrip;
          Alcotest.test_case "little endian" `Quick test_little_endian;
          Alcotest.test_case "page crossing" `Quick test_page_crossing;
          Alcotest.test_case "partial overwrite" `Quick test_partial_overwrite;
          Alcotest.test_case "array helpers" `Quick test_array_helpers;
          Alcotest.test_case "sparsity" `Quick test_sparsity;
          Alcotest.test_case "negative address" `Quick test_negative_address_rejected;
          Alcotest.test_case "segments" `Quick test_segments;
          QCheck_alcotest.to_alcotest prop_store_load_roundtrip;
          QCheck_alcotest.to_alcotest prop_disjoint_stores_independent;
        ] );
    ]
