(* Tests for the fault-injection subsystem and the graceful-degradation
   (quarantine) pipeline: seeded injector determinism, typed deadlock /
   livelock verdicts from the replay watchdogs, coverage accounting on
   partial reports, and a fuzz smoke run over a registered workload. *)

open Threadfuser_prog
open Threadfuser
module Machine = Threadfuser_machine.Machine
module Thread_trace = Threadfuser_trace.Thread_trace
module Event = Threadfuser_trace.Event
module Serial = Threadfuser_trace.Serial
module Tf_error = Threadfuser_util.Tf_error
module Injector = Threadfuser_fault.Injector
module Fuzz = Threadfuser_fault.Fuzz
module Registry = Threadfuser_workloads.Registry
module W = Threadfuser_workloads.Workload

(* A worker with a critical section; run on a quantum-1 machine so the
   lanes genuinely contend for the lock. *)
let lock_funcs =
  [
    Build.(
      func "worker"
        [
          lock_acquire (imm 0x500);
          add (reg 2) (imm 1);
          add (reg 2) (imm 2);
          lock_release (imm 0x500);
          ret;
        ]);
  ]

let traced_lock_workload ?(n = 4) () =
  let prog = Program.assemble lock_funcs in
  let m =
    Machine.create ~config:{ Machine.default_config with quantum = 1 } prog
  in
  let r = Machine.run_workers m ~worker:"worker" ~args:(Array.make n []) in
  (prog, r.Machine.traces)

let options = { Analyzer.default_options with warp_size = 4 }

(* Dropping a Lock_rel must surface as a typed Deadlock: the trusting
   pipeline raises it, the checked pipeline quarantines and reports. *)
let test_deadlock_verdict () =
  let prog, traces = traced_lock_workload () in
  (* drop the first Lock_rel of thread 0 *)
  let t0 = traces.(0) in
  let events =
    Array.of_list
      (List.filter
         (function Event.Lock_rel _ -> false | _ -> true)
         (Array.to_list t0.Thread_trace.events))
  in
  let damaged = Array.copy traces in
  damaged.(0) <- { t0 with Thread_trace.events };
  (match Analyzer.analyze ~options prog damaged with
  | exception Tf_error.Error d ->
      Alcotest.(check string)
        "typed deadlock" "deadlock"
        (Tf_error.kind_name d.Tf_error.kind)
  | exception e ->
      Alcotest.failf "expected Tf_error deadlock, got %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "dropped unlock accepted by trusting pipeline");
  (* checked pipeline: no exception, explicit quarantine + partial report *)
  let c = Analyzer.analyze_checked ~options prog damaged in
  let cov = c.Analyzer.result.Analyzer.report.Metrics.coverage in
  Alcotest.(check bool) "quarantined something" true (c.Analyzer.quarantined <> []);
  Alcotest.(check int) "coverage adds up" cov.Metrics.threads_total
    (cov.Metrics.threads_analyzed + cov.Metrics.threads_quarantined);
  Alcotest.(check bool) "report degraded" true
    (Metrics.degraded c.Analyzer.result.Analyzer.report)

(* A fuel bound far below the trace size must end in failed warps, never a
   hang or an escape. *)
let test_fuel_watchdog () =
  let prog, traces = traced_lock_workload () in
  (match Analyzer.analyze_checked ~options ~fuel:3 prog traces with
  | c ->
      let cov = c.Analyzer.result.Analyzer.report.Metrics.coverage in
      Alcotest.(check bool) "starved replay quarantines" true
        (cov.Metrics.warps_failed > 0 || cov.Metrics.threads_quarantined > 0);
      Alcotest.(check int) "coverage adds up" cov.Metrics.threads_total
        (cov.Metrics.threads_analyzed + cov.Metrics.threads_quarantined)
  | exception e ->
      Alcotest.failf "fuel exhaustion escaped: %s" (Printexc.to_string e));
  (* and with the default (generous) fuel the same traces analyze fully *)
  let c = Analyzer.analyze_checked ~options prog traces in
  Alcotest.(check bool) "clean under default fuel" false
    (Metrics.degraded c.Analyzer.result.Analyzer.report)

(* Same seed -> byte-identical corruption; different seed -> (almost
   surely) different damage. *)
let test_injector_deterministic () =
  let _, traces = traced_lock_workload () in
  let serial t =
    Serial.to_string t
  in
  let d1, a1 = Injector.inject ~seed:42 traces in
  let d2, a2 = Injector.inject ~seed:42 traces in
  Alcotest.(check string) "event faults deterministic" (serial d1) (serial d2);
  Alcotest.(check int) "same faults applied" (List.length a1)
    (List.length a2);
  let bytes = Serial.to_string traces in
  let b1, _ = Injector.corrupt_bytes ~seed:7 bytes in
  let b2, _ = Injector.corrupt_bytes ~seed:7 bytes in
  Alcotest.(check string) "byte faults deterministic" b1 b2;
  Alcotest.(check bool) "corruption changed something" true (b1 <> bytes)

(* The acceptance contract in miniature: a seeded campaign over a real
   registered workload must end every run in a clean report, a typed
   rejection, or an accounted partial report — zero uncaught exceptions. *)
let test_fuzz_smoke () =
  let w = Registry.find "vectoradd" in
  let tr = W.trace_cpu ~threads:8 w in
  let bytes = Serial.to_string tr.W.traces in
  let t = Fuzz.run ~seed0:1 ~runs:100 ~prog:tr.W.prog ~bytes () in
  Alcotest.(check int) "all runs classified" 100 t.Fuzz.runs;
  (match t.Fuzz.uncaught with
  | [] -> ()
  | (seed, m) :: _ ->
      Alcotest.failf "seed %d escaped the checked pipeline: %s" seed m);
  Alcotest.(check bool) "campaign exercised the reject path" true
    (t.Fuzz.rejected > 0)

(* Quarantining every thread must still produce a (fully degraded) report
   rather than an exception. *)
let test_all_quarantined () =
  let prog, traces = traced_lock_workload ~n:2 () in
  let garbage =
    Array.map
      (fun (t : Thread_trace.t) ->
        { t with Thread_trace.events = [| Event.Return; Event.Return |] })
      traces
  in
  let c = Analyzer.analyze_checked ~options prog garbage in
  let cov = c.Analyzer.result.Analyzer.report.Metrics.coverage in
  Alcotest.(check int) "none analyzed" 0 cov.Metrics.threads_analyzed;
  Alcotest.(check int) "all quarantined" 2 cov.Metrics.threads_quarantined

let () =
  Alcotest.run "fault"
    [
      ( "fault",
        [
          Alcotest.test_case "deadlock verdict" `Quick test_deadlock_verdict;
          Alcotest.test_case "fuel watchdog" `Quick test_fuel_watchdog;
          Alcotest.test_case "injector determinism" `Quick
            test_injector_deterministic;
          Alcotest.test_case "all threads quarantined" `Quick
            test_all_quarantined;
          Alcotest.test_case "fuzz smoke (100 seeds)" `Quick test_fuzz_smoke;
        ] );
    ]
