(* Tests for the optimization-level pipelines: semantics preservation across
   O0..O3 and the structural effects each level is meant to have. *)

open Threadfuser_isa
open Threadfuser_prog
module Compiler = Threadfuser_compiler.Compiler
module Machine = Threadfuser_machine.Machine
module Memory = Threadfuser_machine.Memory
module Thread_trace = Threadfuser_trace.Thread_trace

(* -- a small suite of source programs ----------------------------------- *)

let arr = 0x20000

(* r0 = sum of first arg0 elements of a global array, with a branch *)
let prog_sum_branchy =
  Build.
    [
      func "worker"
        [
          mov (reg 1) (imm 0);
          mov (reg 2) (imm 0);
          (* acc *)
          while_ Cond.Lt (reg 1) (reg 0)
            [
              mov (reg 3) (mem ~base:1 ~scale:8 ~index:1 ~disp:arr ());
              if_ Cond.Ge (reg 3) (imm 50)
                ~then_:[ mov (reg 4) (imm 2) ]
                ~else_:[ mov (reg 4) (imm 1) ]
                ();
              mul (reg 3) (reg 4);
              add (reg 2) (reg 3);
              add (reg 1) (imm 1);
            ];
          mov (reg 0) (reg 2);
          ret;
        ];
    ]

(* nested call computing a polynomial; exercises calls under O0 *)
let prog_calls =
  Build.
    [
      func "square" [ mul (reg 0) (reg 0); ret ];
      func "worker"
        [
          mov (reg 6) (reg 0);
          call "square";
          add (reg 0) (reg 6);
          mov (reg 6) (reg 0);
          call "square";
          add (reg 0) (reg 6);
          ret;
        ];
    ]

(* store then reload repeatedly (O2 fodder), with widths *)
let prog_mem_widths =
  Build.
    [
      func "worker"
        [
          mov (reg 1) (imm (arr + 64));
          mov (mem ~base:1 ()) (reg 0);
          mov (reg 2) (mem ~base:1 ());
          mov (reg 3) (mem ~base:1 ());
          add (reg 2) (reg 3);
          mov (mem ~base:1 ~disp:8 ()) (reg 2) ~w:Width.W4;
          mov (reg 4) (mem ~base:1 ~disp:8 ()) ~w:Width.W4;
          mov (reg 0) (reg 4);
          ret;
        ];
    ]

(* a lock-protected shared accumulator *)
let prog_locked =
  Build.
    [
      func "worker"
        [
          lock_acquire (imm 0x30000);
          mov (reg 1) (imm 0x30100);
          mov (reg 2) (mem ~base:1 ());
          add (reg 2) (reg 0);
          mov (mem ~base:1 ()) (reg 2);
          lock_release (imm 0x30000);
          mov (reg 0) (reg 2);
          ret;
        ];
    ]

let suite =
  [
    ("sum_branchy", prog_sum_branchy);
    ("calls", prog_calls);
    ("mem_widths", prog_mem_widths);
    ("locked", prog_locked);
  ]

(* Run a program's "worker" with the given per-thread args on fresh state;
   return final r0s and a probe region of memory. *)
let run_levels surface ~setup ~args =
  List.map
    (fun level ->
      let prog = Compiler.compile level surface in
      let m = Machine.create prog in
      setup (Machine.memory m);
      let r = Machine.run_workers m ~worker:"worker" ~args in
      let regs = Array.map (fun regs -> regs.(Reg.ret)) r.Machine.final_regs in
      let probe = Memory.load_array64 (Machine.memory m) arr 40 in
      let shared = Memory.load_i64 (Machine.memory m) 0x30100 in
      (level, (regs, probe, shared)))
    Compiler.all_levels

let check_levels_agree name surface ~setup ~args =
  match run_levels surface ~setup ~args with
  | [] -> assert false
  | (_, reference) :: rest ->
      List.iter
        (fun (level, result) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s matches O0" name (Compiler.to_string level))
            true (result = reference))
        rest

let default_setup mem =
  let g = Threadfuser_util.Lcg.create 7 in
  for i = 0 to 63 do
    Memory.store_i64 mem (arr + (8 * i)) (Threadfuser_util.Lcg.int g 100)
  done

let test_semantics_fixed () =
  List.iter
    (fun (name, surface) ->
      check_levels_agree name surface ~setup:default_setup
        ~args:(Array.init 6 (fun i -> [ (i * 7) mod 13 ])))
    suite

let prop_semantics_random =
  QCheck.Test.make ~name:"O0..O3 agree on random inputs" ~count:40
    QCheck.(pair small_int (list_of_size (QCheck.Gen.int_range 1 8) (int_bound 20)))
    (fun (seed, arg_list) ->
      let args = Array.of_list (List.map (fun a -> [ a ]) arg_list) in
      let setup mem =
        let g = Threadfuser_util.Lcg.create seed in
        for i = 0 to 63 do
          Memory.store_i64 mem (arr + (8 * i)) (Threadfuser_util.Lcg.int g 100)
        done
      in
      List.for_all
        (fun (name, surface) ->
          ignore name;
          match run_levels surface ~setup ~args with
          | [] -> false
          | (_, reference) :: rest -> List.for_all (fun (_, r) -> r = reference) rest)
        suite)

(* -- structural effects -------------------------------------------------- *)

let count_instrs pred surface level =
  let prog = Compiler.compile level surface in
  let n = ref 0 in
  Array.iter
    (fun (f : Program.func) ->
      Array.iter
        (fun (b : Program.block) -> Array.iter (fun i -> if pred i then incr n) b.Program.instrs)
        f.Program.blocks)
    prog.Program.funcs;
  !n

let is_mem_op (i : (int, int) Instr.t) = Instr.mem_operand_count i > 0

let is_branch (i : (int, int) Instr.t) =
  match i with Instr.Jcc _ | Instr.Jmp _ -> true | _ -> false

let test_o0_inflates_memory_ops () =
  let o0 = count_instrs is_mem_op prog_sum_branchy Compiler.O0 in
  let o1 = count_instrs is_mem_op prog_sum_branchy Compiler.O1 in
  Alcotest.(check bool) "O0 has more mem ops" true (o0 > 2 * o1)

let test_o2_removes_loads () =
  let o1 = count_instrs is_mem_op prog_mem_widths Compiler.O1 in
  let o2 = count_instrs is_mem_op prog_mem_widths Compiler.O2 in
  Alcotest.(check bool) "O2 removes loads" true (o2 < o1)

let test_o3_removes_branches () =
  let o1 = count_instrs is_branch prog_sum_branchy Compiler.O1 in
  let o3 = count_instrs is_branch prog_sum_branchy Compiler.O3 in
  Alcotest.(check bool)
    (Printf.sprintf "O3 if-converts (O1=%d O3=%d)" o1 o3)
    true (o3 < o1)

(* dynamic effect: O0 produces more traced memory accesses *)
let test_o0_dynamic_traffic () =
  let traffic level =
    let prog = Compiler.compile level prog_sum_branchy in
    let m = Machine.create prog in
    default_setup (Machine.memory m);
    let r = Machine.run_workers m ~worker:"worker" ~args:[| [ 10 ] |] in
    let s = Thread_trace.stats r.Machine.traces.(0) in
    s.Thread_trace.loads + s.Thread_trace.stores
  in
  Alcotest.(check bool) "O0 traffic >> O1" true
    (traffic Compiler.O0 > 3 * traffic Compiler.O1)

(* O3's unrolling shortens the dynamic block count of a hot loop *)
let test_o3_unroll_dynamic () =
  let blocks level =
    let prog = Compiler.compile level prog_sum_branchy in
    let m = Machine.create prog in
    default_setup (Machine.memory m);
    let r = Machine.run_workers m ~worker:"worker" ~args:[| [ 16 ] |] in
    (Thread_trace.stats r.Machine.traces.(0)).Thread_trace.blocks
  in
  Alcotest.(check bool) "O3 executes fewer blocks" true
    (blocks Compiler.O3 < blocks Compiler.O1)

(* -- pass-specific edge cases -------------------------------------------- *)

module Ifconv = Threadfuser_compiler.Ifconv
module Unroll = Threadfuser_compiler.Unroll

let count_in_surface pred surface =
  List.fold_left
    (fun acc (f : Surface.func) ->
      List.fold_left
        (fun acc item ->
          match item with
          | Surface.Ins i when pred i -> acc + 1
          | _ -> acc)
        acc f.Surface.body)
    0 surface

let is_cmov = function Instr.Cmov _ -> true | _ -> false

let test_ifconv_rejects_memory_writes () =
  (* a store in the then-branch must not be if-converted (it would execute
     unconditionally) *)
  let surface =
    Build.
      [
        func "worker"
          [
            if_ Cond.Eq (reg 0) (imm 0)
              ~then_:[ mov (mem ~disp:0x20000 ()) (imm 1) ]
              ();
            ret;
          ];
      ]
  in
  Alcotest.(check int) "no cmov introduced" 0
    (count_in_surface is_cmov (Ifconv.apply surface))

let test_ifconv_rejects_overlapping_else () =
  (* else writes a register the then-branch reads: conversion is unsound *)
  let surface =
    Build.
      [
        func "worker"
          [
            mov (reg 2) (imm 7);
            if_ Cond.Eq (reg 0) (imm 0)
              ~then_:[ mov (reg 1) (reg 2) ]
              ~else_:[ mov (reg 2) (imm 9); mov (reg 1) (imm 0) ]
              ();
            ret;
          ];
      ]
  in
  Alcotest.(check int) "rejected" 0
    (count_in_surface is_cmov (Ifconv.apply surface))

let test_ifconv_accepts_simple_diamond () =
  let surface =
    Build.
      [
        func "worker"
          [
            if_ Cond.Eq (reg 0) (imm 0)
              ~then_:[ mov (reg 1) (imm 1) ]
              ~else_:[ mov (reg 1) (imm 2) ]
              ();
            mov (reg 0) (reg 1);
            ret;
          ];
      ]
  in
  let converted = Ifconv.apply surface in
  Alcotest.(check bool) "cmov introduced" true
    (count_in_surface is_cmov converted > 0);
  (* and it still computes the same thing *)
  List.iter
    (fun arg ->
      let run surf =
        let m = Machine.create (Program.assemble surf) in
        Machine.run_func m ~fn:"worker" ~args:[ arg ]
      in
      Alcotest.(check int) "same result" (run surface) (run converted))
    [ 0; 1 ]

let test_unroll_requires_private_head () =
  (* a loop head that is also a jump target from elsewhere must not be
     unrolled *)
  let body =
    Build.(
      seq
        [
          mov (reg 1) (imm 0);
          jmp "head";
          label "head";
          cmp (reg 1) (imm 4);
          jcc Cond.Ge "end";
          add (reg 1) (imm 1);
          jmp "head";
          label "end";
          ret;
        ])
  in
  let surface = [ { Surface.name = "worker"; body } ] in
  let before = count_in_surface (fun i -> Instr.is_terminator i) surface in
  let after = count_in_surface (fun i -> Instr.is_terminator i) (Unroll.apply surface) in
  Alcotest.(check int) "unchanged" before after

let test_unroll_preserves_iteration_count () =
  let surface =
    Build.
      [
        func "worker"
          [
            mov (reg 0) (imm 0);
            mov (reg 1) (imm 0);
            seq
              [
                while_ Cond.Lt (reg 1) (imm 10)
                  [ add (reg 0) (reg 1); add (reg 1) (imm 1) ];
              ];
            ret;
          ];
      ]
  in
  let run surf =
    let m = Machine.create (Program.assemble surf) in
    Machine.run_func m ~fn:"worker" ~args:[]
  in
  let unrolled = Unroll.apply surface in
  Alcotest.(check int) "sum preserved" (run surface) (run unrolled);
  (* the unrolled version executes fewer blocks *)
  let blocks surf =
    let m = Machine.create (Program.assemble surf) in
    let r = Machine.run_workers m ~worker:"worker" ~args:[| [] |] in
    (Thread_trace.stats r.Machine.traces.(0)).Thread_trace.blocks
  in
  Alcotest.(check bool) "fewer blocks" true (blocks unrolled < blocks surface)

let () =
  Alcotest.run "compiler"
    [
      ( "semantics",
        [
          Alcotest.test_case "fixed inputs" `Quick test_semantics_fixed;
          QCheck_alcotest.to_alcotest prop_semantics_random;
        ] );
      ( "structure",
        [
          Alcotest.test_case "O0 memory ops" `Quick test_o0_inflates_memory_ops;
          Alcotest.test_case "O2 load elim" `Quick test_o2_removes_loads;
          Alcotest.test_case "O3 if-conversion" `Quick test_o3_removes_branches;
          Alcotest.test_case "O0 dynamic traffic" `Quick test_o0_dynamic_traffic;
          Alcotest.test_case "O3 unroll dynamic" `Quick test_o3_unroll_dynamic;
        ] );
      ( "pass edges",
        [
          Alcotest.test_case "ifconv rejects stores" `Quick
            test_ifconv_rejects_memory_writes;
          Alcotest.test_case "ifconv rejects overlap" `Quick
            test_ifconv_rejects_overlapping_else;
          Alcotest.test_case "ifconv accepts diamond" `Quick
            test_ifconv_accepts_simple_diamond;
          Alcotest.test_case "unroll private head" `Quick
            test_unroll_requires_private_head;
          Alcotest.test_case "unroll preserves" `Quick
            test_unroll_preserves_iteration_count;
        ] );
    ]
