(* Guard rails for the paper's headline claims: run the experiment modules
   and assert the qualitative results EXPERIMENTS.md reports, so a
   regression in any substrate (machine, compiler, emulator, simulators)
   that silently bends a figure fails CI. *)

module E = Threadfuser_experiments
module W = Threadfuser_workloads.Workload
module Registry = Threadfuser_workloads.Registry
module Compiler = Threadfuser_compiler.Compiler
open Threadfuser

let ctx = E.Ctx.create ()

let test_fig1_monotone_and_banded () =
  let rows = E.Fig1.series ctx in
  Alcotest.(check int) "36 rows" 36 (List.length rows);
  List.iter
    (fun (r : E.Fig1.row) ->
      match List.map snd r.E.Fig1.eff with
      | [ e8; e16; e32 ] ->
          Alcotest.(check bool)
            (r.E.Fig1.workload ^ " monotone in width")
            true
            (e8 >= e16 -. 1e-9 && e16 >= e32 -. 1e-9)
      | _ -> Alcotest.fail "expected three widths")
    rows

let test_fig5_claims () =
  let stats = E.Fig5.per_level (E.Fig5.samples ctx) in
  let find l = List.find (fun (s : E.Fig5.level_stats) -> s.E.Fig5.level = l) stats in
  let o0 = find Compiler.O0 and o1 = find Compiler.O1 in
  Alcotest.(check bool) "O1 efficiency correlates" true (o1.E.Fig5.eff_corr > 0.95);
  Alcotest.(check bool) "O1 efficiency MAE small" true (o1.E.Fig5.eff_mae < 0.05);
  Alcotest.(check bool) "O1 memory correlates" true (o1.E.Fig5.txn_corr > 0.9);
  Alcotest.(check bool) "O1 memory MAE reasonable" true (o1.E.Fig5.txn_mape < 0.3);
  Alcotest.(check bool) "O0 inflates transactions" true
    (o0.E.Fig5.txn_mape > 5.0 *. o1.E.Fig5.txn_mape)

let test_fig5_o3_overestimates_streamcluster () =
  (* the concrete O3 overestimate the paper describes: gcc if-converts the
     running-minimum diamond the GPU binary keeps *)
  let s = E.Fig5.samples ctx in
  let find level =
    List.find
      (fun (x : E.Fig5.sample) ->
        x.E.Fig5.workload = "streamcluster" && x.E.Fig5.level = level)
      s
  in
  let o1 = find Compiler.O1 and o3 = find Compiler.O3 in
  Alcotest.(check bool) "O3 predicted above hardware" true
    (o3.E.Fig5.predicted_eff > o3.E.Fig5.hardware_eff +. 0.005);
  Alcotest.(check bool) "O1 tighter than O3 here" true
    (abs_float (o1.E.Fig5.predicted_eff -. o1.E.Fig5.hardware_eff)
    < abs_float (o3.E.Fig5.predicted_eff -. o3.E.Fig5.hardware_eff))

let test_fig8_claims () =
  let rows = E.Fig8.series ctx in
  let geomean = E.Fig8.geomean_traced rows in
  Alcotest.(check int) "13 services" 13 (List.length rows);
  Alcotest.(check bool) "geomean traced majority" true (geomean > 0.6);
  (* leaf compute services are almost fully traced *)
  let traced name =
    (List.find (fun (r : E.Fig8.row) -> r.E.Fig8.workload = name) rows).E.Fig8.traced
  in
  Alcotest.(check bool) "hdsearch-leaf mostly traced" true (traced "hdsearch-leaf" > 0.9);
  Alcotest.(check bool) "relay tier skips more" true
    (traced "mcrouter-mid" < traced "hdsearch-leaf")

let test_fig9_claims () =
  let rows = E.Fig9.series ctx in
  List.iter
    (fun (r : E.Fig9.row) ->
      Alcotest.(check bool)
        (r.E.Fig9.workload ^ ": locks never increase efficiency")
        true
        (r.E.Fig9.eff_locks <= r.E.Fig9.eff_nolocks +. 1e-9))
    rows;
  let find name = List.find (fun (r : E.Fig9.row) -> r.E.Fig9.workload = name) rows in
  Alcotest.(check bool) "coarse-locked uniqueid collapses" true
    ((find "uniqueid").E.Fig9.eff_nolocks -. (find "uniqueid").E.Fig9.eff_locks > 0.3);
  Alcotest.(check bool) "fine-grained textsearch unaffected" true
    (abs_float
       ((find "textsearch-leaf").E.Fig9.eff_nolocks
       -. (find "textsearch-leaf").E.Fig9.eff_locks)
    < 0.01)

let test_fig10_claims () =
  let rows = E.Fig10.series ctx in
  (* private stacks and scattered heap chunks defeat coalescing *)
  let find name = List.find (fun (r : E.Fig10.row) -> r.E.Fig10.workload = name) rows in
  let post = find "post" in
  Alcotest.(check bool) "post heap divergent" true
    (post.E.Fig10.heap.Metrics.txns_per_instr > 8.0);
  Alcotest.(check bool) "post stack divergent" true
    (post.E.Fig10.stack.Metrics.txns_per_instr > 8.0)

let test_fig6_shape () =
  let rows, corr = E.Fig6.run ctx in
  let speedup name =
    (List.find (fun (r : E.Fig6.row) -> r.E.Fig6.workload = name) rows)
      .E.Fig6.speedup_tf
  in
  Alcotest.(check bool) "coalesced microbenchmark wins" true
    (speedup "vectoradd" > 5.0);
  Alcotest.(check bool) "pigz loses" true (speedup "pigz" < 1.0);
  Alcotest.(check bool) "vectoradd beats pigz" true
    (speedup "vectoradd" > 10.0 *. speedup "pigz");
  Alcotest.(check bool) "projection correlates with CUDA series" true (corr > 0.9)

let test_table1_catalog () =
  let t = E.Table1.build ctx in
  Alcotest.(check bool) "renders with 36 rows" true
    (let csv = Threadfuser_report.Table.to_csv t in
     List.length (String.split_on_char '\n' csv) >= 37)

let test_dot_export () =
  let w = Registry.find "bfs" in
  let tr = W.trace_cpu w in
  let dcfgs = Threadfuser_cfg.Dcfg.of_traces tr.W.prog tr.W.traces in
  let ip = Threadfuser_cfg.Ipdom.compute dcfgs.(0) in
  let dot = Threadfuser_cfg.Dot.to_string tr.W.prog dcfgs.(0) (Some ip) in
  let contains needle =
    let n = String.length needle and h = String.length dot in
    let rec go i = i + n <= h && (String.sub dot i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "digraph" true (contains "digraph");
  Alcotest.(check bool) "has edges" true (contains "->");
  Alcotest.(check bool) "has reconv edges" true (contains "reconv");
  Alcotest.(check bool) "has exit" true (contains "exit")

let test_per_warp_consistency () =
  let r = W.analyze (Registry.find "bfs") in
  let rep = r.Analyzer.report in
  Alcotest.(check int) "warp count" rep.Metrics.n_warps
    (List.length rep.Metrics.per_warp);
  Alcotest.(check int) "issues add up" rep.Metrics.issues
    (List.fold_left (fun acc (w : Metrics.warp_stat) -> acc + w.Metrics.warp_issues) 0
       rep.Metrics.per_warp);
  Alcotest.(check int) "instrs add up" rep.Metrics.thread_instrs
    (List.fold_left (fun acc (w : Metrics.warp_stat) -> acc + w.Metrics.warp_instrs) 0
       rep.Metrics.per_warp)

let test_scaling_claim () =
  let rows = E.Scaling.series ctx in
  List.iter
    (fun (r : E.Scaling.row) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s spread %.1f%% <= 8 points" r.E.Scaling.workload
           (100. *. r.E.Scaling.spread))
        true
        (r.E.Scaling.spread <= 0.08))
    rows

let test_hot_blocks () =
  let r = W.analyze (Registry.find "pigz") in
  let hot = r.Analyzer.report.Metrics.hot_blocks in
  Alcotest.(check bool) "some hot blocks" true (List.length hot > 0);
  Alcotest.(check bool) "at most ten" true (List.length hot <= 10);
  (* ranked by wasted issue slots, descending *)
  let wasted (b : Metrics.block_stat) =
    (b.Metrics.block_issues * 32) - b.Metrics.block_instrs
  in
  let rec sorted = function
    | a :: (b :: _ as rest) -> wasted a >= wasted b && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted" true (sorted hot);
  List.iter
    (fun (b : Metrics.block_stat) ->
      Alcotest.(check bool) "divergent" true (b.Metrics.block_efficiency < 0.9))
    hot;
  (* a perfectly uniform workload reports no hot blocks *)
  let u = W.analyze (Registry.find "md5") in
  Alcotest.(check int) "uniform has none" 0
    (List.length u.Analyzer.report.Metrics.hot_blocks)

let test_serialize_all_pessimistic () =
  let eff sync =
    (W.analyze ~options:{ Analyzer.default_options with sync }
       (Registry.find "mcrouter-memcached"))
      .Analyzer.report
      .Metrics.simt_efficiency
  in
  let conflicting = eff Emulator.Serialize in
  let all = eff Emulator.Serialize_all in
  let ignored = eff Emulator.Ignore_sync in
  Alcotest.(check bool) "whole-warp <= conflicting-only" true
    (all <= conflicting +. 1e-9);
  Alcotest.(check bool) "conflicting-only <= ignored" true
    (conflicting <= ignored +. 1e-9)

let () =
  Alcotest.run "experiments"
    [
      ( "paper claims",
        [
          Alcotest.test_case "fig1 monotone" `Slow test_fig1_monotone_and_banded;
          Alcotest.test_case "fig5 correlation" `Slow test_fig5_claims;
          Alcotest.test_case "fig5 O3 overestimate" `Slow
            test_fig5_o3_overestimates_streamcluster;
          Alcotest.test_case "fig8 traced share" `Slow test_fig8_claims;
          Alcotest.test_case "fig9 lock impact" `Slow test_fig9_claims;
          Alcotest.test_case "fig10 segments" `Slow test_fig10_claims;
          Alcotest.test_case "fig6 speedup shape" `Slow test_fig6_shape;
          Alcotest.test_case "table1 catalog" `Quick test_table1_catalog;
        ] );
      ( "features",
        [
          Alcotest.test_case "dot export" `Quick test_dot_export;
          Alcotest.test_case "per-warp stats" `Quick test_per_warp_consistency;
          Alcotest.test_case "serialize-all" `Quick test_serialize_all_pessimistic;
          Alcotest.test_case "scaling claim" `Slow test_scaling_claim;
          Alcotest.test_case "hot blocks" `Quick test_hot_blocks;
        ] );
    ]
