(* End-to-end tests over the Table I workload suite: every workload runs
   through the full machine -> trace -> analyzer pipeline, and the paper's
   qualitative landscape (which workloads are SIMT-friendly, which are
   hostile, who skips I/O, who serializes on locks) holds. *)

open Threadfuser
module W = Threadfuser_workloads.Workload
module Registry = Threadfuser_workloads.Registry
module Thread_trace = Threadfuser_trace.Thread_trace

let report ?options ?threads name =
  (W.analyze ?options ?threads (Registry.find name)).Analyzer.report

let efficiency ?options ?threads name =
  (report ?options ?threads name).Metrics.simt_efficiency

let test_catalog_complete () =
  Alcotest.(check int) "36 workloads" 36 (List.length Registry.all);
  Alcotest.(check int) "11 correlation workloads" 11
    (List.length Registry.correlation);
  Alcotest.(check int) "13 microservices" 13 (List.length Registry.microservices);
  let names = Registry.names () in
  Alcotest.(check int) "unique names" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_all_workloads_analyze () =
  List.iter
    (fun (w : W.t) ->
      let r = W.analyze w in
      let e = r.Analyzer.report.Metrics.simt_efficiency in
      Alcotest.(check bool)
        (Printf.sprintf "%s efficiency in (0,1]" w.W.name)
        true
        (e > 0.0 && e <= 1.0 +. 1e-9);
      Alcotest.(check bool)
        (Printf.sprintf "%s executed instructions" w.W.name)
        true
        (r.Analyzer.report.Metrics.thread_instrs > 0))
    (Registry.hdsearch_mid_fixed :: Registry.all)

let test_friendly_workloads_high_efficiency () =
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (name ^ " >= 95%")
        true
        (efficiency name >= 0.95))
    [ "md5"; "nbody"; "vectoradd"; "uncoalesced"; "swaptions"; "vips"; "rotate"; "nn" ]

let test_hostile_workloads_low_efficiency () =
  List.iter
    (fun (name, bound) ->
      let e = efficiency name in
      Alcotest.(check bool)
        (Printf.sprintf "%s <= %.0f%% (got %.1f%%)" name (100. *. bound) (100. *. e))
        true (e <= bound))
    [ ("pigz", 0.45); ("bfs", 0.35); ("hdsearch-mid", 0.20); ("uniqueid", 0.45) ]

let test_fig7_fix_story () =
  let broken = efficiency "hdsearch-mid" in
  let fixed = efficiency "hdsearch-mid-fixed" in
  Alcotest.(check bool) "fixed >= 85%" true (fixed >= 0.85);
  Alcotest.(check bool) "fix helps at least 5x" true (fixed >= 5.0 *. broken)

let test_getpoint_dominates_hdsearch () =
  let r = report "hdsearch-mid" in
  let getpoint =
    List.find
      (fun (f : Metrics.func_stat) -> f.Metrics.func_name = "getpoint")
      r.Metrics.per_function
  in
  Alcotest.(check bool) "getpoint > 30% of instructions" true
    (getpoint.Metrics.instr_share > 0.3);
  Alcotest.(check bool) "getpoint inefficient" true
    (getpoint.Metrics.efficiency < 0.5);
  (* the allocator called from vector::push_back serializes hard *)
  let malloc =
    List.find
      (fun (f : Metrics.func_stat) -> f.Metrics.func_name = "__malloc")
      r.Metrics.per_function
  in
  Alcotest.(check bool) "allocator serialized" true
    (malloc.Metrics.efficiency < 0.1);
  Alcotest.(check bool) "allocator dominates issues" true
    (malloc.Metrics.issues > getpoint.Metrics.issues)

let test_warp_width_sensitivity () =
  List.iter
    (fun name ->
      let eff w =
        efficiency ~options:{ Analyzer.default_options with warp_size = w } name
      in
      let e8 = eff 8 and e16 = eff 16 and e32 = eff 32 in
      Alcotest.(check bool)
        (Printf.sprintf "%s monotone (%.2f %.2f %.2f)" name e8 e16 e32)
        true
        (e8 >= e16 -. 1e-9 && e16 >= e32 -. 1e-9))
    [ "pigz"; "bfs"; "b+tree"; "freqmine" ]

let test_md5_insensitive_to_warp_width () =
  let eff w = efficiency ~options:{ Analyzer.default_options with warp_size = w } "md5" in
  Alcotest.(check bool) "md5 varies < 5% across widths" true
    (eff 8 -. eff 32 < 0.05)

let test_microservices_skip_io () =
  List.iter
    (fun (w : W.t) ->
      let r = W.analyze w in
      Alcotest.(check bool)
        (w.W.name ^ " skips I/O instructions")
        true
        (r.Analyzer.report.Metrics.skipped_io > 0);
      Alcotest.(check bool)
        (w.W.name ^ " traced fraction < 1")
        true
        (Metrics.traced_fraction r.Analyzer.report < 1.0))
    Registry.microservices

let test_compute_workloads_fully_traced () =
  List.iter
    (fun name ->
      let r = report name in
      Alcotest.(check (float 1e-9)) (name ^ " fully traced") 1.0
        (Metrics.traced_fraction r))
    [ "md5"; "nbody"; "blackscholes" ]

let test_lock_serialization_visible () =
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " serializes") true
        ((report name).Metrics.serializations > 0))
    [ "hdsearch-mid"; "uniqueid"; "urlshort"; "mcrouter-memcached" ]

let test_ignore_sync_raises_uniqueid () =
  let ser = efficiency "uniqueid" in
  let ign =
    efficiency
      ~options:{ Analyzer.default_options with sync = Emulator.Ignore_sync }
      "uniqueid"
  in
  Alcotest.(check bool)
    (Printf.sprintf "ignore (%.2f) > serialize (%.2f)" ign ser)
    true (ign > ser)

let test_memory_divergence_landscape () =
  (* the coalesced microbenchmark is near the 4-transaction ideal for
     8-byte accesses; its strided twin is at the 32-transaction worst *)
  let txn name = Metrics.txns_per_mem_instr (report name) in
  Alcotest.(check bool) "vectoradd near ideal" true (txn "vectoradd" <= 8.5);
  Alcotest.(check (float 0.01)) "uncoalesced worst case" 32.0 (txn "uncoalesced")

let test_instruction_conservation () =
  List.iter
    (fun name ->
      let w = Registry.find name in
      let tr = W.trace_cpu w in
      let r = Analyzer.analyze tr.W.prog tr.W.traces in
      let traced =
        Array.fold_left
          (fun acc t -> acc + (Thread_trace.stats t).Thread_trace.traced_instrs)
          0 tr.W.traces
      in
      Alcotest.(check int) (name ^ " conserves instructions") traced
        r.Analyzer.report.Metrics.thread_instrs)
    [ "bfs"; "hdsearch-mid"; "pigz" ]

let test_cuda_variants_trace () =
  List.iter
    (fun (w : W.t) ->
      match W.trace_cuda w with
      | None -> Alcotest.fail (w.W.name ^ " missing CUDA variant")
      | Some tr ->
          let r = Analyzer.analyze tr.W.prog tr.W.traces in
          Alcotest.(check bool)
            (w.W.name ^ " CUDA variant efficiency in (0,1]")
            true
            (r.Analyzer.report.Metrics.simt_efficiency > 0.0))
    Registry.correlation

let test_determinism () =
  let r1 = report "mcrouter-memcached" and r2 = report "mcrouter-memcached" in
  Alcotest.(check int) "same issues" r1.Metrics.issues r2.Metrics.issues;
  Alcotest.(check int) "same txns" r1.Metrics.total_mem_txns r2.Metrics.total_mem_txns

let test_thread_count_override () =
  let r = report ~threads:16 "vectoradd" in
  Alcotest.(check int) "threads" 16 r.Metrics.n_threads;
  Alcotest.(check int) "one warp" 1 r.Metrics.n_warps

let test_serialized_traces_analyze_identically () =
  (* the paper's workflow: capture a trace file once, analyze it later —
     the report must be identical to analyzing in-memory traces *)
  let w = Registry.find "b+tree" in
  let tr = W.trace_cpu w in
  let roundtripped =
    Threadfuser_trace.Serial.of_string
      (Threadfuser_trace.Serial.to_string tr.W.traces)
  in
  let a = Analyzer.analyze tr.W.prog tr.W.traces in
  let b = Analyzer.analyze tr.W.prog roundtripped in
  Alcotest.(check int) "issues" a.Analyzer.report.Metrics.issues
    b.Analyzer.report.Metrics.issues;
  Alcotest.(check int) "instrs" a.Analyzer.report.Metrics.thread_instrs
    b.Analyzer.report.Metrics.thread_instrs;
  Alcotest.(check int) "txns" a.Analyzer.report.Metrics.total_mem_txns
    b.Analyzer.report.Metrics.total_mem_txns

let test_scale_parameter () =
  (* scale grows the synthetic inputs; the analysis must still hold its
     qualitative shape *)
  List.iter
    (fun name ->
      let base = efficiency name in
      let w = Registry.find name in
      let scaled = (W.analyze ~scale:2 w).Analyzer.report in
      Alcotest.(check bool)
        (Printf.sprintf "%s scale=2 runs (%.2f vs %.2f)" name
           scaled.Metrics.simt_efficiency base)
        true
        (scaled.Metrics.simt_efficiency > 0.0
        && abs_float (scaled.Metrics.simt_efficiency -. base) < 0.15))
    [ "bfs"; "nn"; "streamcluster"; "pagerank" ]

let test_find_unknown_raises () =
  match Registry.find "no-such-workload" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let () =
  Alcotest.run "workloads"
    [
      ( "catalog",
        [
          Alcotest.test_case "complete" `Quick test_catalog_complete;
          Alcotest.test_case "all analyze" `Slow test_all_workloads_analyze;
          Alcotest.test_case "unknown name" `Quick test_find_unknown_raises;
          Alcotest.test_case "thread override" `Quick test_thread_count_override;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "trace-file invariance" `Quick
            test_serialized_traces_analyze_identically;
          Alcotest.test_case "scale parameter" `Quick test_scale_parameter;
        ] );
      ( "efficiency landscape",
        [
          Alcotest.test_case "friendly high" `Slow test_friendly_workloads_high_efficiency;
          Alcotest.test_case "hostile low" `Slow test_hostile_workloads_low_efficiency;
          Alcotest.test_case "warp width sensitivity" `Slow test_warp_width_sensitivity;
          Alcotest.test_case "md5 insensitive" `Slow test_md5_insensitive_to_warp_width;
          Alcotest.test_case "conservation" `Slow test_instruction_conservation;
        ] );
      ( "fig7 case study",
        [
          Alcotest.test_case "fix story" `Slow test_fig7_fix_story;
          Alcotest.test_case "getpoint dominates" `Slow test_getpoint_dominates_hdsearch;
        ] );
      ( "microservices",
        [
          Alcotest.test_case "skip io" `Slow test_microservices_skip_io;
          Alcotest.test_case "compute fully traced" `Quick test_compute_workloads_fully_traced;
          Alcotest.test_case "lock serialization" `Slow test_lock_serialization_visible;
          Alcotest.test_case "ignore sync" `Quick test_ignore_sync_raises_uniqueid;
        ] );
      ( "memory",
        [ Alcotest.test_case "divergence landscape" `Quick test_memory_divergence_landscape ] );
      ( "correlation set",
        [ Alcotest.test_case "cuda variants" `Slow test_cuda_variants_trace ] );
    ]
