(* Tests for OpenMP-style team barriers: machine semantics (phase ordering,
   early-exit teams, spin accounting), analyzer behaviour (lockstep
   crossing, counting), serialization, and compiler-pass transparency. *)

open Threadfuser_isa
open Threadfuser_prog
open Threadfuser
module Machine = Threadfuser_machine.Machine
module Memory = Threadfuser_machine.Memory
module Compiler = Threadfuser_compiler.Compiler
module Thread_trace = Threadfuser_trace.Thread_trace
module Serial = Threadfuser_trace.Serial

let bar = 0x50000

let phase_a = 0x20000

let out = 0x60000

(* worker(tid, n): phase 1 publishes a[tid]; the barrier orders the phases;
   phase 2 reads the *right* neighbor's value, which only exists if the
   barrier really waited for everyone. *)
let phased_worker =
  Build.(
    func "worker"
      [
        mov (reg 6) (reg 0);
        mov (reg 7) (reg 6);
        mul (reg 7) (imm 31);
        add (reg 7) (imm 1);
        mov (mem ~scale:8 ~index:6 ~disp:phase_a ()) (reg 7);
        barrier (imm bar);
        (* read neighbor (tid + 1) mod n *)
        mov (reg 8) (reg 6);
        add (reg 8) (imm 1);
        rem (reg 8) (reg 1);
        mov (reg 9) (mem ~scale:8 ~index:8 ~disp:phase_a ());
        mov (mem ~scale:8 ~index:6 ~disp:out ()) (reg 9);
        ret;
      ])

let run_phased ?(config = { Machine.default_config with quantum = 1 }) n =
  let prog = Program.assemble [ phased_worker ] in
  let m = Machine.create ~config prog in
  let r =
    Machine.run_workers m ~worker:"worker" ~args:(Array.init n (fun i -> [ i; n ]))
  in
  (m, prog, r)

let test_barrier_orders_phases () =
  let n = 8 in
  let m, _, _ = run_phased n in
  let mem = Machine.memory m in
  for tid = 0 to n - 1 do
    let neighbor = (tid + 1) mod n in
    Alcotest.(check int)
      (Printf.sprintf "thread %d saw neighbor's phase-1 value" tid)
      ((neighbor * 31) + 1)
      (Memory.load_i64 mem (out + (8 * tid)))
  done

let test_barrier_event_traced () =
  let _, _, r = run_phased 4 in
  Array.iter
    (fun t ->
      Alcotest.(check int) "one barrier per thread" 1
        (Thread_trace.stats t).Thread_trace.barriers)
    r.Machine.traces

let test_barrier_waiters_spin () =
  let _, _, r = run_phased 8 in
  let spin =
    Array.fold_left
      (fun acc t -> acc + (Thread_trace.stats t).Thread_trace.skipped_spin)
      0 r.Machine.traces
  in
  Alcotest.(check bool) "waiting threads spun" true (spin > 0)

let test_single_thread_passes () =
  let m, _, _ = run_phased 1 in
  Alcotest.(check int) "self neighbor" 1
    (Memory.load_i64 (Machine.memory m) out)

let test_early_finisher_releases () =
  (* odd threads return before the barrier; the even team must still pass
     once the odd ones have finished *)
  let worker =
    Build.(
      func "worker"
        [
          mov (reg 6) (reg 0);
          and_ (reg 6) (imm 1);
          if_ Cond.Eq (reg 6) (imm 1) ~then_:[ ret ] ();
          barrier (imm bar);
          mov (mem ~scale:8 ~index:0 ~disp:out ()) (imm 1);
          ret;
        ])
  in
  let prog = Program.assemble [ worker ] in
  let m = Machine.create ~config:{ Machine.default_config with quantum = 1 } prog in
  let _ = Machine.run_workers m ~worker:"worker" ~args:(Array.init 4 (fun i -> [ i ])) in
  Alcotest.(check int) "even thread passed" 1
    (Memory.load_i64 (Machine.memory m) (out + 16))

let test_analyzer_barrier_lockstep () =
  let _, prog, r = run_phased 8 in
  let res =
    Analyzer.analyze ~options:{ Analyzer.default_options with warp_size = 8 }
      prog r.Machine.traces
  in
  let rep = res.Analyzer.report in
  (* a warp-uniform barrier costs nothing: full lockstep *)
  Alcotest.(check (float 1e-9)) "efficiency 1.0" 1.0 rep.Metrics.simt_efficiency;
  Alcotest.(check int) "one warp-level crossing" 1 rep.Metrics.barrier_syncs

let test_analyzer_barrier_across_warps () =
  let _, prog, r = run_phased 16 in
  let res =
    Analyzer.analyze ~options:{ Analyzer.default_options with warp_size = 8 }
      prog r.Machine.traces
  in
  Alcotest.(check int) "two warps, two crossings" 2
    res.Analyzer.report.Metrics.barrier_syncs

let test_serial_roundtrip_with_barrier () =
  let _, _, r = run_phased 2 in
  let back = Serial.of_string (Serial.to_string r.Machine.traces) in
  Array.iteri
    (fun i (t : Thread_trace.t) ->
      Alcotest.(check bool)
        (Printf.sprintf "thread %d identical" i)
        true
        (Array.for_all2 Threadfuser_trace.Event.equal t.Thread_trace.events
           back.(i).Thread_trace.events))
    r.Machine.traces

let test_compiler_passes_preserve_barrier_program () =
  let surface = [ phased_worker ] in
  let n = 6 in
  let run level =
    let prog = Compiler.compile level surface in
    let m = Machine.create ~config:{ Machine.default_config with quantum = 1 } prog in
    let _ =
      Machine.run_workers m ~worker:"worker" ~args:(Array.init n (fun i -> [ i; n ]))
    in
    Memory.load_array64 (Machine.memory m) out n
  in
  let reference = run Compiler.O0 in
  List.iter
    (fun level ->
      Alcotest.(check bool)
        (Compiler.to_string level ^ " agrees")
        true
        (run level = reference))
    [ Compiler.O1; Compiler.O2; Compiler.O3 ]

let () =
  Alcotest.run "barrier"
    [
      ( "machine",
        [
          Alcotest.test_case "orders phases" `Quick test_barrier_orders_phases;
          Alcotest.test_case "event traced" `Quick test_barrier_event_traced;
          Alcotest.test_case "waiters spin" `Quick test_barrier_waiters_spin;
          Alcotest.test_case "single thread" `Quick test_single_thread_passes;
          Alcotest.test_case "early finisher" `Quick test_early_finisher_releases;
        ] );
      ( "analyzer",
        [
          Alcotest.test_case "lockstep crossing" `Quick test_analyzer_barrier_lockstep;
          Alcotest.test_case "across warps" `Quick test_analyzer_barrier_across_warps;
        ] );
      ( "integration",
        [
          Alcotest.test_case "serialization" `Quick test_serial_roundtrip_with_barrier;
          Alcotest.test_case "compiler passes" `Quick
            test_compiler_passes_preserve_barrier_program;
        ] );
    ]
