(* Tests for the SIMT analyzer core: warp emulation, efficiency math,
   coalescing, synchronization serialization, warp-trace generation. *)

open Threadfuser_isa
open Threadfuser_prog
open Threadfuser
module Machine = Threadfuser_machine.Machine
module Thread_trace = Threadfuser_trace.Thread_trace

let trace_workload ?config funcs ~worker ~args =
  let prog = Program.assemble funcs in
  let m = Machine.create ?config prog in
  let r = Machine.run_workers m ~worker ~args in
  (prog, r.Machine.traces)

let analyze ?(options = Analyzer.default_options) funcs ~worker ~args =
  let prog, traces = trace_workload funcs ~worker ~args in
  Analyzer.analyze ~options prog traces

(* diverge on arg parity: then = 2 instrs, else = 1 instr, join = ret *)
let diamond =
  Build.(
    func "worker"
      [
        mov (reg 1) (reg 0);
        and_ (reg 1) (imm 1);
        if_ Cond.Eq (reg 1) (imm 0)
          ~then_:[ mov (reg 2) (imm 10) ]
          ~else_:[ mov (reg 2) (imm 20) ]
          ();
        ret;
      ])

let two_lane_options = { Analyzer.default_options with warp_size = 2 }

let test_uniform_efficiency_is_one () =
  let r =
    analyze ~options:two_lane_options [ diamond ] ~worker:"worker"
      ~args:[| [ 0 ]; [ 2 ] |]
  in
  Alcotest.(check (float 1e-9)) "efficiency" 1.0 r.Analyzer.report.Metrics.simt_efficiency

let test_diamond_efficiency_hand_computed () =
  (* entry 4 instrs both lanes; then 2 instrs lane0; else 1 instr lane1;
     join 1 instr both.  issues = 4+2+1+1 = 8; thread instrs = 8+2+1+2 = 13;
     efficiency = 13 / (8*2). *)
  let r =
    analyze ~options:two_lane_options [ diamond ] ~worker:"worker"
      ~args:[| [ 0 ]; [ 1 ] |]
  in
  let rep = r.Analyzer.report in
  Alcotest.(check int) "issues" 8 rep.Metrics.issues;
  Alcotest.(check int) "thread instrs" 13 rep.Metrics.thread_instrs;
  Alcotest.(check (float 1e-9)) "efficiency" (13.0 /. 16.0)
    rep.Metrics.simt_efficiency

let test_instruction_conservation () =
  let prog, traces =
    trace_workload [ diamond ] ~worker:"worker"
      ~args:(Array.init 16 (fun i -> [ i ]))
  in
  let r = Analyzer.analyze ~options:{ Analyzer.default_options with warp_size = 8 } prog traces in
  let traced =
    Array.fold_left
      (fun acc t -> acc + (Thread_trace.stats t).Thread_trace.traced_instrs)
      0 traces
  in
  Alcotest.(check int) "thread instrs conserved" traced
    r.Analyzer.report.Metrics.thread_instrs

let test_efficiency_decreases_with_warp_size () =
  (* data-dependent loop: thread i iterates i times *)
  let worker =
    Build.(
      func "worker"
        [
          mov (reg 1) (imm 0);
          while_ Cond.Lt (reg 1) (reg 0) [ add (reg 1) (imm 1) ];
          ret;
        ])
  in
  let prog, traces =
    trace_workload [ worker ] ~worker:"worker"
      ~args:(Array.init 32 (fun i -> [ i ]))
  in
  let eff w =
    let r = Analyzer.analyze ~options:{ Analyzer.default_options with warp_size = w } prog traces in
    r.Analyzer.report.Metrics.simt_efficiency
  in
  let e8 = eff 8 and e16 = eff 16 and e32 = eff 32 in
  Alcotest.(check bool) "e8 >= e16" true (e8 >= e16 -. 1e-9);
  Alcotest.(check bool) "e16 >= e32" true (e16 >= e32 -. 1e-9)

let global_array = 0x20000

let vec_worker ~stride =
  (* load a[stride * tid], add 1, store back *)
  Build.(
    func "worker"
      [
        mov (reg 1) (reg 0);
        mul (reg 1) (imm stride);
        add (reg 1) (imm global_array);
        mov (reg 2) (mem ~base:1 ());
        add (reg 2) (imm 1);
        mov (mem ~base:1 ()) (reg 2);
        ret;
      ])

let test_coalesced_accesses () =
  let r =
    analyze
      ~options:{ Analyzer.default_options with warp_size = 4 }
      [ vec_worker ~stride:8 ] ~worker:"worker"
      ~args:(Array.init 4 (fun i -> [ i ]))
  in
  let g = r.Analyzer.report.Metrics.global_mem in
  (* 4 lanes x 8 bytes contiguous = exactly one 32 B transaction per
     instruction: one load instr + one store instr => 2 txns *)
  Alcotest.(check int) "txns" 2 g.Metrics.txns;
  Alcotest.(check int) "mem instrs" 2 g.Metrics.mem_issues

let test_divergent_accesses () =
  let r =
    analyze
      ~options:{ Analyzer.default_options with warp_size = 4 }
      [ vec_worker ~stride:64 ] ~worker:"worker"
      ~args:(Array.init 4 (fun i -> [ i ]))
  in
  let g = r.Analyzer.report.Metrics.global_mem in
  (* 64 B apart: every lane its own transaction *)
  Alcotest.(check int) "txns" 8 g.Metrics.txns;
  Alcotest.(check (float 1e-9)) "txns per instr" 4.0 g.Metrics.txns_per_instr

let lock_addr = 0x30000

let locked_worker =
  Build.(
    func "worker"
      [
        lock_acquire (imm lock_addr);
        mov (reg 1) (imm 0x30100);
        mov (reg 2) (mem ~base:1 ());
        add (reg 2) (imm 1);
        mov (mem ~base:1 ()) (reg 2);
        lock_release (imm lock_addr);
        ret;
      ])

let locked_traces () =
  trace_workload
    ~config:{ Machine.default_config with quantum = 1 }
    [ locked_worker ] ~worker:"worker" ~args:(Array.make 4 [])

let test_lock_serialization_counted () =
  let prog, traces = locked_traces () in
  let r =
    Analyzer.analyze
      ~options:{ Analyzer.default_options with warp_size = 4 }
      prog traces
  in
  let rep = r.Analyzer.report in
  Alcotest.(check int) "one serialization" 1 rep.Metrics.serializations;
  Alcotest.(check bool) "serialized instrs" true (rep.Metrics.serialized_instrs > 0);
  Alcotest.(check bool) "efficiency below 1" true
    (rep.Metrics.simt_efficiency < 0.999);
  Alcotest.(check int) "acquires" 4 rep.Metrics.lock_acquires

let test_lock_ignore_mode_full_efficiency () =
  let prog, traces = locked_traces () in
  let r =
    Analyzer.analyze
      ~options:
        { Analyzer.default_options with warp_size = 4; sync = Emulator.Ignore_sync }
      prog traces
  in
  Alcotest.(check (float 1e-9)) "lockstep when locks ignored" 1.0
    r.Analyzer.report.Metrics.simt_efficiency

let test_spin_skip_reported () =
  let prog, traces = locked_traces () in
  let r =
    Analyzer.analyze ~options:{ Analyzer.default_options with warp_size = 4 } prog traces
  in
  Alcotest.(check bool) "spin skipped > 0" true
    (r.Analyzer.report.Metrics.skipped_spin > 0);
  Alcotest.(check bool) "traced fraction < 1" true
    (Metrics.traced_fraction r.Analyzer.report < 1.0)

let test_io_skip_reported () =
  let worker = Build.(func "worker" [ io_in (imm 300); mov (reg 1) (imm 1); ret ]) in
  let r = analyze [ worker ] ~worker:"worker" ~args:(Array.make 2 []) in
  Alcotest.(check int) "io instrs" 600 r.Analyzer.report.Metrics.skipped_io

let test_per_function_breakdown () =
  let funcs =
    [
      Build.(
        func "hot"
          [
            mov (reg 1) (imm 0);
            for_up ~i:2 ~from_:(imm 0) ~below:(imm 20) [ add (reg 1) (reg 2) ];
            ret;
          ]);
      Build.(func "worker" [ call "hot"; ret ]);
    ]
  in
  let r =
    analyze ~options:two_lane_options funcs ~worker:"worker" ~args:[| []; [] |]
  in
  let per_fn = r.Analyzer.report.Metrics.per_function in
  Alcotest.(check int) "two functions" 2 (List.length per_fn);
  let hot = List.find (fun (f : Metrics.func_stat) -> f.func_name = "hot") per_fn in
  let worker = List.find (fun (f : Metrics.func_stat) -> f.func_name = "worker") per_fn in
  Alcotest.(check bool) "hot dominates" true
    (hot.Metrics.instr_share > worker.Metrics.instr_share);
  let share_sum =
    List.fold_left (fun acc (f : Metrics.func_stat) -> acc +. f.instr_share) 0.0 per_fn
  in
  Alcotest.(check (float 1e-9)) "shares sum to 1" 1.0 share_sum

let test_function_exit_reconv_ablation () =
  (* branchy loop body: IPDOM reconvergence should beat exit-only *)
  let worker =
    Build.(
      func "worker"
        [
          mov (reg 1) (imm 0);
          mov (reg 3) (imm 0);
          for_up ~i:2 ~from_:(imm 0) ~below:(imm 8)
            [
              mov (reg 4) (reg 0);
              add (reg 4) (reg 2);
              and_ (reg 4) (imm 1);
              if_ Cond.Eq (reg 4) (imm 0)
                ~then_:[ add (reg 1) (imm 3) ]
                ~else_:[ add (reg 3) (imm 5) ]
                ();
            ];
          ret;
        ])
  in
  let prog, traces =
    trace_workload [ worker ] ~worker:"worker"
      ~args:(Array.init 8 (fun i -> [ i ]))
  in
  let eff reconv =
    (Analyzer.analyze
       ~options:{ Analyzer.default_options with warp_size = 8; reconv }
       prog traces)
      .Analyzer.report
      .Metrics.simt_efficiency
  in
  let ipdom_eff = eff Emulator.Ipdom_reconv in
  let exit_eff = eff Emulator.Function_exit_reconv in
  Alcotest.(check bool) "ipdom >= exit-only" true (ipdom_eff >= exit_eff -. 1e-9);
  Alcotest.(check bool) "ipdom strictly better here" true (ipdom_eff > exit_eff)

let test_warp_trace_generated () =
  let r =
    analyze
      ~options:
        { Analyzer.default_options with warp_size = 4; gen_warp_trace = true }
      [ vec_worker ~stride:8 ] ~worker:"worker"
      ~args:(Array.init 4 (fun i -> [ i ]))
  in
  match r.Analyzer.warp_trace with
  | None -> Alcotest.fail "no warp trace"
  | Some wt ->
      Alcotest.(check int) "one warp" 1 (Array.length wt.Warp_trace.warps);
      let ops = wt.Warp_trace.warps.(0).Warp_trace.ops in
      Alcotest.(check bool) "ops emitted" true (Array.length ops > 0);
      (* find the global load micro-op and check its lane addresses *)
      let loads =
        Array.to_list ops
        |> List.filter_map (fun (e : Warp_trace.entry) ->
               match e.Warp_trace.op.Warp_trace.mem with
               | Some m when not m.Warp_trace.is_store -> Some m
               | _ -> None)
      in
      Alcotest.(check int) "one load mop" 1 (List.length loads);
      let m = List.hd loads in
      Alcotest.(check (array int)) "lane addresses"
        (Array.init 4 (fun i -> global_array + (8 * i)))
        m.Warp_trace.addrs

let test_batching_policies_partition () =
  let prog, traces =
    trace_workload [ diamond ] ~worker:"worker"
      ~args:(Array.init 13 (fun i -> [ i ]))
  in
  ignore prog;
  List.iter
    (fun policy ->
      let warps = Batching.form policy ~warp_size:4 traces in
      let all = Array.to_list warps |> List.concat_map Array.to_list in
      Alcotest.(check (list int))
        (Batching.to_string policy ^ " covers all tids")
        (List.init 13 (fun i -> i))
        (List.sort compare all))
    Batching.all

let test_strided_batching_structure () =
  let prog, traces =
    trace_workload [ diamond ] ~worker:"worker"
      ~args:(Array.init 8 (fun i -> [ i ]))
  in
  ignore prog;
  let warps = Batching.form Batching.Strided ~warp_size:4 traces in
  (* 8 threads, width 4 -> 2 warps; warp w holds threads w, w+2, w+4, w+6 *)
  Alcotest.(check int) "two warps" 2 (Array.length warps);
  Alcotest.(check (array int)) "warp 0 dealt" [| 0; 2; 4; 6 |] warps.(0);
  Alcotest.(check (array int)) "warp 1 dealt" [| 1; 3; 5; 7 |] warps.(1)

let test_signature_batching_improves_sorted_divergence () =
  (* interleaved short/long threads: signature batching should group them
     and beat sequential batching *)
  let worker =
    Build.(
      func "worker"
        [
          mov (reg 1) (imm 0);
          while_ Cond.Lt (reg 1) (reg 0) [ add (reg 1) (imm 1) ];
          ret;
        ])
  in
  let args = Array.init 32 (fun i -> [ (if i mod 2 = 0 then 2 else 40) ]) in
  let prog, traces = trace_workload [ worker ] ~worker:"worker" ~args in
  let eff batching =
    (Analyzer.analyze
       ~options:{ Analyzer.default_options with warp_size = 16; batching }
       prog traces)
      .Analyzer.report
      .Metrics.simt_efficiency
  in
  Alcotest.(check bool) "signature >= sequential" true
    (eff Batching.Signature_greedy >= eff Batching.Sequential)

let test_max_width_warp () =
  (* the mask supports up to 62 lanes; a 62-wide warp must work end to end *)
  let r =
    analyze
      ~options:{ Analyzer.default_options with warp_size = Mask.max_lanes }
      [ diamond ] ~worker:"worker"
      ~args:(Array.init Mask.max_lanes (fun i -> [ i ]))
  in
  let rep = r.Analyzer.report in
  Alcotest.(check int) "one warp" 1 rep.Metrics.n_warps;
  Alcotest.(check bool) "divergent but sane" true
    (rep.Metrics.simt_efficiency > 0.5 && rep.Metrics.simt_efficiency < 1.0)

let prop_efficiency_bounds =
  QCheck.Test.make ~name:"efficiency in (0,1]" ~count:50
    QCheck.(pair (int_range 1 30) (int_range 1 6))
    (fun (n_threads, log_w) ->
      let warp_size = 1 lsl log_w in
      let prog, traces =
        trace_workload [ diamond ] ~worker:"worker"
          ~args:(Array.init n_threads (fun i -> [ i * 3 ]))
      in
      let r =
        Analyzer.analyze
          ~options:{ Analyzer.default_options with warp_size }
          prog traces
      in
      let e = r.Analyzer.report.Metrics.simt_efficiency in
      e > 0.0 && e <= 1.0 +. 1e-9)

let () =
  Alcotest.run "analyzer"
    [
      ( "efficiency",
        [
          Alcotest.test_case "uniform = 1.0" `Quick test_uniform_efficiency_is_one;
          Alcotest.test_case "diamond hand-computed" `Quick
            test_diamond_efficiency_hand_computed;
          Alcotest.test_case "instruction conservation" `Quick
            test_instruction_conservation;
          Alcotest.test_case "warp size monotone" `Quick
            test_efficiency_decreases_with_warp_size;
          Alcotest.test_case "62-lane warp" `Quick test_max_width_warp;
          QCheck_alcotest.to_alcotest prop_efficiency_bounds;
        ] );
      ( "memory",
        [
          Alcotest.test_case "coalesced" `Quick test_coalesced_accesses;
          Alcotest.test_case "divergent" `Quick test_divergent_accesses;
        ] );
      ( "sync",
        [
          Alcotest.test_case "serialization" `Quick test_lock_serialization_counted;
          Alcotest.test_case "ignore mode" `Quick test_lock_ignore_mode_full_efficiency;
          Alcotest.test_case "spin reported" `Quick test_spin_skip_reported;
          Alcotest.test_case "io reported" `Quick test_io_skip_reported;
        ] );
      ( "reports",
        [
          Alcotest.test_case "per-function" `Quick test_per_function_breakdown;
          Alcotest.test_case "reconv ablation" `Quick
            test_function_exit_reconv_ablation;
          Alcotest.test_case "warp trace" `Quick test_warp_trace_generated;
        ] );
      ( "batching",
        [
          Alcotest.test_case "partition" `Quick test_batching_policies_partition;
          Alcotest.test_case "strided structure" `Quick test_strided_batching_structure;
          Alcotest.test_case "signature grouping" `Quick
            test_signature_batching_improves_sorted_divergence;
        ] );
    ]
