(* The artifact cache and the TFPACK1 container: encode/decode round-trips
   (byte-identical re-encode, any chunking), corruption detection, the
   crash-at-any-byte commit torture, injected durability faults
   (torn write / bit flip / partial rename), scrub's index rebuild,
   deterministic LRU gc, and the warm-suite integration (second run serves
   byte-identical reports from the cache). *)

module Pack = Threadfuser_trace.Pack
module Serial = Threadfuser_trace.Serial
module Thread_trace = Threadfuser_trace.Thread_trace
module Event = Threadfuser_trace.Event
module Cache = Threadfuser_cache.Cache
module Store_fault = Threadfuser_fault.Store_fault
module Runner = Threadfuser_runner.Runner
module Tf_error = Threadfuser_util.Tf_error

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "tfcache-test-%d-%d" (Unix.getpid ()) !dir_counter)

let read_file p =
  let ic = open_in_bin p in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file p s =
  let oc = open_out_bin p in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s)

(* ------------------------------------------------------------------ *)
(* TFPACK1                                                              *)

(* Every event constructor, sync addresses, an access-free block, an
   empty thread and a non-trivial tid. *)
let sample_traces =
  [|
    {
      Thread_trace.tid = 0;
      events =
        [|
          Event.Block
            {
              func = 0;
              block = 0;
              n_instr = 3;
              accesses =
                [| { Event.ioff = 1; addr = 0x100; size = 8; is_store = false } |];
            };
          Event.Call 1;
          Event.Lock_acq 0x40;
          Event.Lock_rel 0x40;
          Event.Return;
          Event.Barrier 0x7000;
          Event.Skip { reason = Event.Io; n_instr = 12 };
          Event.Skip { reason = Event.Excluded; n_instr = 2 };
          Event.Block
            {
              func = 0;
              block = 1;
              n_instr = 2;
              accesses =
                [|
                  { Event.ioff = 0; addr = 0x108; size = 8; is_store = true };
                  { Event.ioff = 1; addr = 0x110; size = 4; is_store = false };
                |];
            };
          Event.Return;
        |];
    };
    { Thread_trace.tid = 1; events = [||] };
    {
      Thread_trace.tid = 7;
      events = [| Event.Block { func = 2; block = 5; n_instr = 1; accesses = [||] } |];
    };
  |]

let check_traces msg expected (actual : Thread_trace.t array) =
  Alcotest.(check int)
    (msg ^ ": count")
    (Array.length expected) (Array.length actual);
  Array.iteri
    (fun i t ->
      Alcotest.(check bool) (Printf.sprintf "%s: trace %d" msg i) true (t = actual.(i)))
    expected

let test_pack_roundtrip () =
  let bytes = Pack.encode sample_traces in
  Alcotest.(check string)
    "magic leads" Pack.magic
    (String.sub bytes 0 (String.length Pack.magic));
  check_traces "decode" sample_traces (Pack.decode bytes);
  Alcotest.(check string) "re-encode is byte-identical" bytes
    (Pack.encode (Pack.decode bytes));
  check_traces "empty pack" [||] (Pack.decode (Pack.encode [||]))

let test_pack_file () =
  let dir = fresh_dir () in
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "t.tfpack" in
  Pack.to_file path sample_traces;
  check_traces "file round-trip" sample_traces (Pack.of_file path)

(* Streaming decode at every chunking agrees with the one-shot decoder,
   byte-at-a-time included. *)
let test_pack_chunked () =
  let bytes = Pack.encode sample_traces in
  List.iter
    (fun chunk ->
      let dec = Pack.Dec.create () in
      let pos = ref 0 in
      let n = String.length bytes in
      while !pos < n do
        let len = min chunk (n - !pos) in
        Pack.Dec.feed dec ~off:!pos ~len bytes;
        pos := !pos + len
      done;
      let acc = ref [] in
      let rec drain () =
        match Pack.Dec.next dec with
        | Pack.Dec.Thread t ->
            acc := t :: !acc;
            drain ()
        | Pack.Dec.End_of_pack -> ()
        | Pack.Dec.Need_more -> Alcotest.fail "decoder starved on full input"
        | Pack.Dec.Corrupt d -> Alcotest.fail (Tf_error.to_string d)
      in
      drain ();
      check_traces
        (Printf.sprintf "chunk size %d" chunk)
        sample_traces
        (Array.of_list (List.rev !acc)))
    [ 1; 2; 3; 7; 16; 64; 4096 ]

let gen_event =
  let open QCheck.Gen in
  frequency
    [
      ( 4,
        let* func = int_bound 20 in
        let* block = int_bound 50 in
        let* n_instr = int_range 1 30 in
        let* n_acc = int_bound 4 in
        let* accs =
          list_repeat n_acc
            (let* ioff = int_bound 29 in
             let* addr = int_bound 1_000_000 in
             let* size = oneofl [ 1; 2; 4; 8 ] in
             let* is_store = bool in
             return { Event.ioff; addr; size; is_store })
        in
        return
          (Event.Block { func; block; n_instr; accesses = Array.of_list accs })
      );
      (1, map (fun f -> Event.Call f) (int_bound 20));
      (1, return Event.Return);
      (1, map (fun a -> Event.Lock_acq a) (int_bound 100_000));
      (1, map (fun a -> Event.Lock_rel a) (int_bound 100_000));
      (1, map (fun a -> Event.Barrier a) (int_bound 100_000));
      ( 1,
        let* reason = oneofl [ Event.Io; Event.Spin; Event.Excluded ] in
        let* n_instr = int_range 1 1000 in
        return (Event.Skip { reason; n_instr }) );
    ]

let gen_traces =
  QCheck.Gen.(
    let* n = int_bound 4 in
    let* ts =
      list_repeat n
        (let* tid = int_bound 1000 in
         let* events = list_size (int_bound 40) gen_event in
         return { Thread_trace.tid; events = Array.of_list events })
    in
    return (Array.of_list ts))

(* decode . encode = id, and encode . decode . encode = encode: the
   container is deterministic, which is what lets the cache
   content-address packed traces. *)
let prop_pack_roundtrip =
  QCheck.Test.make ~name:"TFPACK1 roundtrip (byte-identical re-encode)"
    ~count:200 (QCheck.make gen_traces) (fun traces ->
      let bytes = Pack.encode traces in
      let back = Pack.decode bytes in
      Array.length back = Array.length traces
      && Array.for_all2
           (fun (a : Thread_trace.t) (b : Thread_trace.t) ->
             a.tid = b.tid && Array.for_all2 Event.equal a.events b.events)
           back traces
      && Pack.encode back = bytes)

(* Any chunking of the byte stream yields the same threads. *)
let prop_pack_chunking =
  QCheck.Test.make ~name:"TFPACK1 streaming decode at any chunking" ~count:100
    (QCheck.make
       QCheck.Gen.(pair gen_traces (list_size (int_bound 30) (int_range 1 64))))
    (fun (traces, chunks) ->
      let bytes = Pack.encode traces in
      let dec = Pack.Dec.create () in
      let pos = ref 0 in
      let n = String.length bytes in
      let cuts = ref chunks in
      while !pos < n do
        let want = match !cuts with c :: rest -> cuts := rest; c | [] -> n in
        let len = min want (n - !pos) in
        Pack.Dec.feed dec ~off:!pos ~len bytes;
        pos := !pos + len
      done;
      let rec drain acc =
        match Pack.Dec.next dec with
        | Pack.Dec.Thread t -> drain (t :: acc)
        | Pack.Dec.End_of_pack -> Some (Array.of_list (List.rev acc))
        | Pack.Dec.Need_more | Pack.Dec.Corrupt _ -> None
      in
      match drain [] with
      | None -> false
      | Some back -> back = Pack.decode bytes)

(* Every strict prefix of a pack is typed-corrupt, never an exception or
   a silent partial decode. *)
let test_pack_truncation () =
  let bytes = Pack.encode sample_traces in
  for cut = 0 to String.length bytes - 1 do
    (match Pack.decode (String.sub bytes 0 cut) with
    | _ -> Alcotest.failf "prefix of %d byte(s) decoded" cut
    | exception Serial.Corrupt _ -> ());
    match Pack.Dec.decode_all (String.sub bytes 0 cut) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "streaming decode accepted a %d-byte prefix" cut
  done

(* Single corrupted byte anywhere: decode must raise [Serial.Corrupt] —
   except inside the (unchecksummed, self-delimiting) tid varints, where a
   flip can only rename a thread, never corrupt its events.  The sweep
   asserts no other exception ever escapes and that at most 2 positions
   (one tid byte per nonempty header region) go undetected. *)
let test_pack_bitflip () =
  let bytes = Pack.encode sample_traces in
  let n = String.length bytes in
  let detected = ref 0 in
  for i = 0 to n - 1 do
    let b = Bytes.of_string bytes in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x41));
    match Pack.decode (Bytes.to_string b) with
    | _ -> ()
    | exception Serial.Corrupt _ -> incr detected
  done;
  Alcotest.(check bool)
    (Printf.sprintf "corruption detected at %d/%d positions" !detected n)
    true
    (!detected >= n - 3)

(* An oversized declared block length is rejected from the header alone,
   before any payload is buffered. *)
let test_pack_oversize_bound () =
  let buf = Buffer.create 32 in
  Buffer.add_string buf Pack.magic;
  Serial.write_uint buf 1;
  Serial.write_uint buf 0;
  Serial.write_uint buf 1_000_000;
  let dec = Pack.Dec.create ~max_block_bytes:1024 () in
  Pack.Dec.feed dec (Buffer.contents buf);
  (match Pack.Dec.next dec with
  | Pack.Dec.Corrupt _ -> ()
  | _ -> Alcotest.fail "oversized block header accepted");
  Alcotest.(check bool) "nothing buffered beyond the header" true
    (Pack.Dec.buffered dec < 32)

(* ------------------------------------------------------------------ *)
(* Cache                                                                *)

let key ?(workload = "bfs:abc123") ?(opt_level = 1) ?(warp_size = 32) () =
  { Cache.workload; opt_level; warp_size; analyzer_version = "tf-analyzer/1" }

let pack_payload = Pack.encode sample_traces

let objects_dir root = Filename.concat root "objects"

let only_object root =
  match Sys.readdir (objects_dir root) with
  | [| f |] -> Filename.concat (objects_dir root) f
  | fs -> Alcotest.failf "expected exactly one object, found %d" (Array.length fs)

let test_cache_roundtrip () =
  let root = fresh_dir () in
  let c = Cache.open_ root in
  let k = key () in
  Alcotest.(check (option string)) "cold miss" None
    (Cache.find c ~key:k ~kind:Cache.Pack);
  Cache.put c ~key:k ~kind:Cache.Pack pack_payload;
  Alcotest.(check (option string)) "hit after put" (Some pack_payload)
    (Cache.find c ~key:k ~kind:Cache.Pack);
  Alcotest.(check (option string)) "other key misses" None
    (Cache.find c ~key:(key ~opt_level:2 ()) ~kind:Cache.Pack);
  Alcotest.(check (option string)) "other kind misses" None
    (Cache.find c ~key:k ~kind:Cache.Report);
  let s = Cache.stat c in
  Alcotest.(check int) "one live entry" 1 s.Cache.entries_live;
  Alcotest.(check int) "no quarantine" 0 s.Cache.quarantined;
  Cache.close c;
  (* durability: a fresh handle serves the same bytes *)
  let c2 = Cache.open_ root in
  Alcotest.(check (option string)) "hit across reopen" (Some pack_payload)
    (Cache.find c2 ~key:k ~kind:Cache.Pack);
  Cache.close c2

let test_cache_key_id () =
  let id = Cache.key_id (key ()) in
  Alcotest.(check bool) "at least 30 hex digits" true (String.length id >= 30);
  Alcotest.(check bool) "filesystem-safe hex" true
    (String.for_all
       (function 'a' .. 'f' | '0' .. '9' -> true | _ -> false)
       id);
  Alcotest.(check string) "deterministic" id (Cache.key_id (key ()));
  List.iter
    (fun k' ->
      Alcotest.(check bool) "distinct inputs, distinct ids" true
        (Cache.key_id k' <> id))
    [ key ~workload:"bfs:abc124" (); key ~opt_level:2 (); key ~warp_size:16 () ]

(* Satellite: commit staging lives inside the cache root — never the
   system temp dir — so the final rename cannot cross a filesystem
   boundary; and commits leave no staging residue behind. *)
let test_cache_tmp_in_root () =
  let root = fresh_dir () in
  let c = Cache.open_ root in
  let tmp = Cache.tmp_dir c in
  Alcotest.(check bool) "tmp dir inside the cache root" true
    (String.length tmp > String.length root
    && String.sub tmp 0 (String.length root) = root);
  Cache.put c ~key:(key ()) ~kind:Cache.Pack pack_payload;
  ignore (Cache.find c ~key:(key ()) ~kind:Cache.Pack);
  Alcotest.(check int) "no staging residue after commit" 0
    (Array.length (Sys.readdir tmp));
  Cache.close c

(* Crash-at-any-byte commit torture (the journal torture test, applied to
   blobs): truncate the committed blob at every byte offset; a lookup must
   never serve bytes, never raise, and always quarantine.  Scrub then
   restores a fully verified store. *)
let test_cache_crash_at_any_byte () =
  let root = fresh_dir () in
  let c = Cache.open_ root in
  let k = key () in
  Cache.put c ~key:k ~kind:Cache.Pack pack_payload;
  let path = only_object root in
  let full = read_file path in
  let corrupt_seen = ref 0 in
  for cut = 0 to String.length full - 1 do
    Cache.put c ~key:k ~kind:Cache.Pack pack_payload;
    write_file path (String.sub full 0 cut);
    match
      Cache.find c ~key:k ~kind:Cache.Pack ~on_corrupt:(fun _ ->
          incr corrupt_seen)
    with
    | None -> ()
    | Some _ -> Alcotest.failf "torn blob served at cut %d" cut
  done;
  Alcotest.(check int) "every cut reported corrupt"
    (String.length full) !corrupt_seen;
  let r = Cache.scrub c in
  Alcotest.(check int) "scrub leaves nothing corrupt" 0 r.Cache.corrupt;
  let v = Cache.verify c in
  Alcotest.(check bool) "verified clean after scrub" true
    (v.Cache.corrupt = 0 && v.Cache.missing = 0 && v.Cache.orphaned = 0);
  Cache.put c ~key:k ~kind:Cache.Pack pack_payload;
  Alcotest.(check (option string)) "store still serves after torture"
    (Some pack_payload)
    (Cache.find c ~key:k ~kind:Cache.Pack);
  Cache.close c

(* A flipped byte in a committed blob is quarantined on read — returned as
   a miss with a typed diagnostic, never served, never fatal. *)
let test_cache_bitflip_quarantine () =
  let root = fresh_dir () in
  let c = Cache.open_ root in
  let k = key () in
  Cache.put c ~key:k ~kind:Cache.Pack pack_payload;
  let path = only_object root in
  let full = read_file path in
  let b = Bytes.of_string full in
  let mid = Bytes.length b / 2 in
  Bytes.set b mid (Char.chr (Char.code (Bytes.get b mid) lxor 0x10));
  write_file path (Bytes.to_string b);
  let diag = ref None in
  (match Cache.find c ~key:k ~kind:Cache.Pack ~on_corrupt:(fun d -> diag := Some d)
   with
  | None -> ()
  | Some _ -> Alcotest.fail "bit-flipped blob served");
  Alcotest.(check bool) "typed diagnostic reported" true (!diag <> None);
  let s = Cache.stat c in
  Alcotest.(check int) "blob quarantined" 1 s.Cache.quarantined;
  Alcotest.(check int) "entry no longer live" 0 s.Cache.entries_live;
  Alcotest.(check (option string)) "subsequent lookups miss cleanly" None
    (Cache.find c ~key:k ~kind:Cache.Pack);
  Cache.close c

(* The seeded durability injectors: every fault mode ends in a clean miss
   and [scrub] heals the store; a partial rename leaves a valid orphan
   that scrub adopts, turning the miss back into a hit. *)
let test_cache_fault_injection () =
  let run_fault ?torn_pct ?flip_pct ?partial_pct ~adopted () =
    let root = fresh_dir () in
    let fault = Store_fault.plan ~seed:42 ?torn_pct ?flip_pct ?partial_pct () in
    let c = Cache.open_ ~fault root in
    let k = key () in
    Cache.put c ~key:k ~kind:Cache.Pack pack_payload;
    (match Cache.find c ~key:k ~kind:Cache.Pack with
    | None -> ()
    | Some got ->
        Alcotest.(check string) "a hit under fault must still be intact"
          pack_payload got);
    Cache.close c;
    (* reopen clean and repair *)
    let c2 = Cache.open_ root in
    let r = Cache.scrub c2 in
    if adopted then
      Alcotest.(check bool) "partial rename's orphan adopted" true
        (r.Cache.orphaned >= 1);
    let v = Cache.verify c2 in
    Alcotest.(check bool) "verified clean after scrub" true
      (v.Cache.corrupt = 0 && v.Cache.missing = 0 && v.Cache.orphaned = 0);
    if adopted then
      Alcotest.(check (option string)) "adopted blob now hits"
        (Some pack_payload)
        (Cache.find c2 ~key:k ~kind:Cache.Pack)
    else begin
      Cache.put c2 ~key:k ~kind:Cache.Pack pack_payload;
      Alcotest.(check (option string)) "healed store serves"
        (Some pack_payload)
        (Cache.find c2 ~key:k ~kind:Cache.Pack)
    end;
    Cache.close c2
  in
  run_fault ~torn_pct:100 ~adopted:false ();
  run_fault ~flip_pct:100 ~adopted:false ();
  run_fault ~partial_pct:100 ~adopted:true ()

(* Scrub rebuilds the index from surviving blobs alone: the envelope is
   self-describing, so losing index.jsonl entirely loses no data. *)
let test_cache_index_rebuild () =
  let root = fresh_dir () in
  let c = Cache.open_ root in
  let k1 = key () and k2 = key ~opt_level:2 () in
  Cache.put c ~key:k1 ~kind:Cache.Pack pack_payload;
  Cache.put c ~key:k2 ~kind:Cache.Pack pack_payload;
  Cache.close c;
  Sys.remove (Filename.concat root "index.jsonl");
  let c2 = Cache.open_ root in
  Alcotest.(check (option string)) "no index, no hit" None
    (Cache.find c2 ~key:k1 ~kind:Cache.Pack);
  let r = Cache.scrub c2 in
  Alcotest.(check int) "both blobs adopted" 2 r.Cache.orphaned;
  Alcotest.(check (option string)) "rebuilt index serves k1"
    (Some pack_payload)
    (Cache.find c2 ~key:k1 ~kind:Cache.Pack);
  Alcotest.(check (option string)) "rebuilt index serves k2"
    (Some pack_payload)
    (Cache.find c2 ~key:k2 ~kind:Cache.Pack);
  Cache.close c2;
  (* the rebuilt index survives a reopen too *)
  let c3 = Cache.open_ root in
  Alcotest.(check (option string)) "rebuilt index durable"
    (Some pack_payload)
    (Cache.find c3 ~key:k1 ~kind:Cache.Pack);
  Cache.close c3

(* A torn tail on the index journal is quarantined on open, never fatal,
   and entries from intact lines keep serving. *)
let test_cache_torn_index_line () =
  let root = fresh_dir () in
  let c = Cache.open_ root in
  let k = key () in
  Cache.put c ~key:k ~kind:Cache.Pack pack_payload;
  Cache.close c;
  let index = Filename.concat root "index.jsonl" in
  let full = read_file index in
  write_file index (full ^ "{\"op\":\"put\",\"tr");
  let c2 = Cache.open_ root in
  Alcotest.(check (option string)) "intact entries survive a torn tail"
    (Some pack_payload)
    (Cache.find c2 ~key:k ~kind:Cache.Pack);
  Cache.close c2

(* gc evicts in journal-append (LRU) order: a touched entry outlives an
   older untouched one, deterministically. *)
let test_cache_gc_lru () =
  let root = fresh_dir () in
  let c = Cache.open_ root in
  let k1 = key ~workload:"a" () in
  let k2 = key ~workload:"b" () in
  let k3 = key ~workload:"c" () in
  Cache.put c ~key:k1 ~kind:Cache.Pack pack_payload;
  Cache.put c ~key:k2 ~kind:Cache.Pack pack_payload;
  Cache.put c ~key:k3 ~kind:Cache.Pack pack_payload;
  (* touch k1: k2 becomes the least recently used *)
  ignore (Cache.find c ~key:k1 ~kind:Cache.Pack);
  let total = (Cache.stat c).Cache.bytes_live in
  let evicted = Cache.gc c ~budget_bytes:(total - 1) in
  Alcotest.(check int) "one eviction to fit" 1 evicted;
  Alcotest.(check (option string)) "LRU entry evicted" None
    (Cache.find c ~key:k2 ~kind:Cache.Pack);
  Alcotest.(check (option string)) "touched entry survives"
    (Some pack_payload)
    (Cache.find c ~key:k1 ~kind:Cache.Pack);
  Alcotest.(check (option string)) "newest entry survives"
    (Some pack_payload)
    (Cache.find c ~key:k3 ~kind:Cache.Pack);
  Alcotest.(check int) "gc to zero clears the store" 2
    (Cache.gc c ~budget_bytes:0);
  Alcotest.(check int) "empty after full eviction" 0
    (Cache.stat c).Cache.entries_live;
  Cache.close c

(* ------------------------------------------------------------------ *)
(* Warm-suite integration                                               *)

let suite_config ~cache dir =
  {
    Runner.default_config with
    parallelism = 1;
    retries = 0;
    backoff_s = 0.005;
    dir;
    cache = Some cache;
  }

let test_warm_suite () =
  let cache_root = fresh_dir () in
  let cache = Cache.open_ cache_root in
  let jobs = List.map Runner.job [ "vectoradd"; "bfs" ] in
  let dir1 = fresh_dir () in
  let m1 = Runner.run ~config:(suite_config ~cache dir1) jobs in
  Alcotest.(check bool) "cold suite ok" true (Runner.all_ok m1);
  Alcotest.(check int) "cold run misses every job" 2 m1.Runner.cache_misses;
  Alcotest.(check int) "cold run has no hits" 0 m1.Runner.cache_hits;
  let dir2 = fresh_dir () in
  let m2 = Runner.run ~config:(suite_config ~cache dir2) jobs in
  Alcotest.(check bool) "warm suite ok" true (Runner.all_ok m2);
  Alcotest.(check int) "warm run hits every job" 2 m2.Runner.cache_hits;
  Alcotest.(check int) "warm run misses nothing" 0 m2.Runner.cache_misses;
  List.iter2
    (fun (e1 : Runner.entry) (e2 : Runner.entry) ->
      Alcotest.(check bool) "warm entry marked cached" true
        (e2.Runner.source = Runner.Cached);
      match (e1.Runner.report_file, e2.Runner.report_file) with
      | Some r1, Some r2 ->
          Alcotest.(check string)
            ("byte-identical report for " ^ e1.Runner.id)
            (read_file (Filename.concat dir1 r1))
            (read_file (Filename.concat dir2 r2))
      | _ -> Alcotest.fail "missing report file")
    m1.Runner.entries m2.Runner.entries;
  (* the rollup surfaces cache effectiveness *)
  let rollup = Threadfuser_report.Json.to_string (Runner.rollup_json m2) in
  List.iter
    (fun needle ->
      let n = String.length needle and m = String.length rollup in
      let rec go i = i + n <= m && (String.sub rollup i n = needle || go (i + 1)) in
      Alcotest.(check bool) ("rollup has " ^ needle) true (go 0))
    [ "cache_hits"; "cache_misses"; "cache_hit_ratio" ];
  Cache.close cache

let () =
  Alcotest.run "cache"
    [
      ( "pack",
        [
          Alcotest.test_case "roundtrip" `Quick test_pack_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick test_pack_file;
          Alcotest.test_case "chunked decode" `Quick test_pack_chunked;
          QCheck_alcotest.to_alcotest prop_pack_roundtrip;
          QCheck_alcotest.to_alcotest prop_pack_chunking;
          Alcotest.test_case "truncation at any byte" `Quick
            test_pack_truncation;
          Alcotest.test_case "corrupted byte detected" `Quick test_pack_bitflip;
          Alcotest.test_case "oversize bound from header" `Quick
            test_pack_oversize_bound;
        ] );
      ( "cache",
        [
          Alcotest.test_case "put/find roundtrip" `Quick test_cache_roundtrip;
          Alcotest.test_case "key ids" `Quick test_cache_key_id;
          Alcotest.test_case "tmp inside root" `Quick test_cache_tmp_in_root;
          Alcotest.test_case "crash at any byte" `Quick
            test_cache_crash_at_any_byte;
          Alcotest.test_case "bit flip quarantined" `Quick
            test_cache_bitflip_quarantine;
          Alcotest.test_case "fault injection heals" `Quick
            test_cache_fault_injection;
          Alcotest.test_case "index rebuilt from blobs" `Quick
            test_cache_index_rebuild;
          Alcotest.test_case "torn index line" `Quick test_cache_torn_index_line;
          Alcotest.test_case "gc is LRU" `Quick test_cache_gc_lru;
        ] );
      ( "suite",
        [ Alcotest.test_case "warm suite serves cache" `Quick test_warm_suite ] );
    ]
