(* Tests for the IR runtime library: allocator behaviour in both modes,
   PRNG determinism and per-thread independence, hash agreement with the
   host-side implementation, memcpy correctness. *)

open Threadfuser_prog
module Rtlib = Threadfuser_workloads.Rtlib
module Machine = Threadfuser_machine.Machine
module Memory = Threadfuser_machine.Memory
module Layout = Threadfuser_machine.Layout

let run_with ?(alloc = Rtlib.Concurrent) ?(threads = 1) ?setup funcs ~worker =
  let prog = Program.assemble (funcs @ Rtlib.funcs alloc) in
  let m = Machine.create prog in
  Rtlib.init (Machine.memory m);
  Option.iter (fun f -> f (Machine.memory m)) setup;
  let r = Machine.run_workers m ~worker ~args:(Array.init threads (fun i -> [ i ])) in
  (m, r)

(* -- malloc ---------------------------------------------------------------- *)

let alloc_twice =
  Build.(
    func "worker"
      [
        mov (reg 0) (imm 24);
        call "__malloc";
        mov (reg 6) (reg 0);
        mov (reg 0) (imm 100);
        call "__malloc";
        mov (reg 1) (reg 0);
        mov (reg 0) (reg 6);
        ret;
      ])

let test_malloc_glibc_disjoint () =
  let _, r = run_with ~alloc:Rtlib.Glibc [ alloc_twice ] ~worker:"worker" in
  let first = r.Machine.final_regs.(0).(0) in
  let second = r.Machine.final_regs.(0).(1) in
  Alcotest.(check bool) "in heap" true (Layout.segment_of first = Layout.Heap);
  Alcotest.(check bool) "aligned" true (first mod 16 = 0);
  (* 24 rounds to 32 + 16-byte header *)
  Alcotest.(check bool) "disjoint, ordered" true (second >= first + 24)

let test_malloc_concurrent_arena_isolation () =
  let _, r =
    run_with ~alloc:Rtlib.Concurrent ~threads:4 [ alloc_twice ] ~worker:"worker"
  in
  let ptrs = Array.map (fun regs -> regs.(0)) r.Machine.final_regs in
  Array.iteri
    (fun i p ->
      Alcotest.(check bool)
        (Printf.sprintf "thread %d in heap" i)
        true
        (Layout.segment_of p = Layout.Heap);
      (* each thread allocates from its own arena *)
      Array.iteri
        (fun j q ->
          if i <> j then
            Alcotest.(check bool)
              (Printf.sprintf "threads %d/%d in different arenas" i j)
              true
              (abs (p - q) >= Rtlib.arena_bytes - 256))
        ptrs)
    ptrs

let test_malloc_glibc_serializes_in_trace () =
  let _, r =
    run_with ~alloc:Rtlib.Glibc ~threads:4 [ alloc_twice ] ~worker:"worker"
  in
  Array.iter
    (fun t ->
      let s = Threadfuser_trace.Thread_trace.stats t in
      (* two mallocs = four lock operations *)
      Alcotest.(check int) "lock ops" 4 s.Threadfuser_trace.Thread_trace.lock_ops)
    r.Machine.traces

let test_malloc_concurrent_lock_free () =
  let _, r =
    run_with ~alloc:Rtlib.Concurrent ~threads:4 [ alloc_twice ] ~worker:"worker"
  in
  Array.iter
    (fun t ->
      let s = Threadfuser_trace.Thread_trace.stats t in
      Alcotest.(check int) "no locks" 0 s.Threadfuser_trace.Thread_trace.lock_ops)
    r.Machine.traces

(* -- rand ------------------------------------------------------------------ *)

let rand_worker =
  Build.(
    func "worker"
      [
        call "__rand";
        mov (reg 6) (reg 0);
        call "__rand";
        mov (reg 1) (reg 0);
        mov (reg 0) (reg 6);
        ret;
      ])

let test_rand_deterministic_and_distinct () =
  let draws () =
    let _, r = run_with ~threads:3 [ rand_worker ] ~worker:"worker" in
    Array.map (fun regs -> (regs.(0), regs.(1))) r.Machine.final_regs
  in
  let a = draws () and b = draws () in
  Alcotest.(check bool) "deterministic" true (a = b);
  (* different threads see different streams; consecutive draws differ *)
  Alcotest.(check bool) "threads differ" true (a.(0) <> a.(1) && a.(1) <> a.(2));
  Array.iter (fun (x, y) -> Alcotest.(check bool) "draws differ" true (x <> y)) a;
  Array.iter
    (fun (x, y) ->
      Alcotest.(check bool) "non-negative" true (x >= 0 && y >= 0))
    a

(* -- hash ------------------------------------------------------------------ *)

let test_hash_matches_host () =
  let data_addr = 0x20000 in
  let worker =
    Build.(
      func "worker"
        [ mov (reg 0) (imm data_addr); mov (reg 1) (imm 16); call "__hash"; ret ])
  in
  let setup mem = Memory.store_string mem data_addr "threadfuser-test" in
  let m, r = run_with ~setup [ worker ] ~worker:"worker" in
  let expected =
    Threadfuser_workloads.W_usuite.host_fnv (Machine.memory m) data_addr 16
  in
  Alcotest.(check int) "IR hash = host hash" expected r.Machine.final_regs.(0).(0)

let test_hash_sensitivity () =
  let worker n =
    Build.(
      func "worker"
        [ mov (reg 0) (imm 0x20000); mov (reg 1) (imm n); call "__hash"; ret ])
  in
  let hash n s =
    let setup mem = Memory.store_string mem 0x20000 s in
    let _, r = run_with ~setup [ worker n ] ~worker:"worker" in
    r.Machine.final_regs.(0).(0)
  in
  Alcotest.(check bool) "different strings hash differently" true
    (hash 4 "abcd" <> hash 4 "abce")

(* -- memcpy ---------------------------------------------------------------- *)

let test_memcpy () =
  let src = 0x20000 and dst = 0x21000 in
  let worker =
    Build.(
      func "worker"
        [
          mov (reg 0) (imm dst);
          mov (reg 1) (imm src);
          mov (reg 2) (imm 11);
          call "__memcpy";
          ret;
        ])
  in
  let setup mem = Memory.store_string mem src "hello world" in
  let m, _ = run_with ~setup [ worker ] ~worker:"worker" in
  let mem = Machine.memory m in
  let copied = String.init 11 (fun i -> Char.chr (Memory.load_byte mem (dst + i))) in
  Alcotest.(check string) "copied" "hello world" copied;
  (* byte after the copy untouched *)
  Alcotest.(check int) "bounded" 0 (Memory.load_byte mem (dst + 11))

let () =
  Alcotest.run "rtlib"
    [
      ( "malloc",
        [
          Alcotest.test_case "glibc disjoint" `Quick test_malloc_glibc_disjoint;
          Alcotest.test_case "concurrent arenas" `Quick
            test_malloc_concurrent_arena_isolation;
          Alcotest.test_case "glibc locks" `Quick test_malloc_glibc_serializes_in_trace;
          Alcotest.test_case "concurrent lock-free" `Quick
            test_malloc_concurrent_lock_free;
        ] );
      ( "rand",
        [ Alcotest.test_case "deterministic/distinct" `Quick test_rand_deterministic_and_distinct ] );
      ( "hash",
        [
          Alcotest.test_case "matches host" `Quick test_hash_matches_host;
          Alcotest.test_case "sensitivity" `Quick test_hash_sensitivity;
        ] );
      ( "memcpy", [ Alcotest.test_case "copy" `Quick test_memcpy ] );
    ]
