(* Tests for the builder DSL and the assembler. *)

open Threadfuser_isa
open Threadfuser_prog

let assemble_one body = Program.assemble [ Build.func "f" body ]

let test_block_splitting () =
  let prog =
    assemble_one
      Build.
        [
          mov (reg 1) (imm 0);
          label "loop";
          add (reg 1) (imm 1);
          cmp (reg 1) (imm 10);
          jcc Cond.Lt "loop";
          ret;
        ]
  in
  let f = Program.func prog 0 in
  (* entry [mov] | loop [add; cmp; jcc] | [ret] *)
  Alcotest.(check int) "block count" 3 (Program.block_count f);
  Alcotest.(check int) "entry size" 1 (Array.length f.Program.blocks.(0).Program.instrs);
  Alcotest.(check int) "loop size" 3 (Array.length f.Program.blocks.(1).Program.instrs);
  Alcotest.(check (list int)) "entry succs" [ 1 ] (Program.block_succs f 0);
  Alcotest.(check (list int)) "loop succs" [ 1; 2 ] (Program.block_succs f 1);
  Alcotest.(check (list int)) "ret succs" [] (Program.block_succs f 2)

let test_call_splits_block () =
  let prog =
    Program.assemble
      [
        Build.func "callee" Build.[ mov (reg 0) (imm 1); ret ];
        Build.func "caller"
          Build.[ mov (reg 1) (imm 0); call "callee"; add (reg 1) (reg 0); ret ];
      ]
  in
  let caller = Program.func prog (Program.find_func prog "caller") in
  (* [mov; call] | [add] | [ret]  -- add;ret separated? add is not a
     terminator so block is [add; ret]?  No: ret is a terminator ending the
     same block, so blocks are [mov;call] [add;ret]. *)
  Alcotest.(check int) "caller blocks" 2 (Program.block_count caller);
  Alcotest.(check int) "first block len" 2
    (Array.length caller.Program.blocks.(0).Program.instrs)

let test_lock_splits_block () =
  let prog =
    assemble_one
      Build.
        [
          lock_acquire (imm 0x100);
          add (reg 1) (imm 1);
          lock_release (imm 0x100);
          ret;
        ]
  in
  let f = Program.func prog 0 in
  Alcotest.(check int) "blocks" 3 (Program.block_count f)

let test_if_else_shape () =
  let prog =
    assemble_one
      Build.
        [
          if_ Cond.Eq (reg 0) (imm 0)
            ~then_:[ mov (reg 1) (imm 10) ]
            ~else_:[ mov (reg 1) (imm 20) ]
            ();
          ret;
        ]
  in
  let f = Program.func prog 0 in
  (* cond block, then block, else block, join(ret) *)
  Alcotest.(check int) "blocks" 4 (Program.block_count f);
  Alcotest.(check (list int)) "diamond" [ 2; 1 ] (Program.block_succs f 0)

let test_undefined_label () =
  match assemble_one Build.[ jmp "nowhere"; ret ] with
  | exception Program.Assembly_error _ -> ()
  | _ -> Alcotest.fail "expected Assembly_error"

let test_undefined_function () =
  match assemble_one Build.[ call "ghost"; ret ] with
  | exception Program.Assembly_error _ -> ()
  | _ -> Alcotest.fail "expected Assembly_error"

let test_duplicate_function () =
  match
    Program.assemble [ Build.func "f" Build.[ ret ]; Build.func "f" Build.[ ret ] ]
  with
  | exception Program.Assembly_error _ -> ()
  | _ -> Alcotest.fail "expected Assembly_error"

let test_fallthrough_off_end () =
  match assemble_one Build.[ mov (reg 1) (imm 0) ] with
  | exception Program.Assembly_error _ -> ()
  | _ -> Alcotest.fail "expected Assembly_error"

let test_two_memory_operands_rejected () =
  let m = Build.mem ~base:1 () in
  match
    assemble_one
      [ [ Surface.Ins (Instr.Mov (Width.W8, m, m)) ]; [ Surface.Ins Instr.Ret ] ]
  with
  | exception Program.Assembly_error _ -> ()
  | _ -> Alcotest.fail "expected Assembly_error"

let test_duplicate_label () =
  match assemble_one Build.[ label "a"; mov (reg 1) (imm 0); label "a"; ret ] with
  | exception Program.Assembly_error _ -> ()
  | _ -> Alcotest.fail "expected Assembly_error"

let test_consecutive_labels_alias () =
  let prog =
    assemble_one
      Build.
        [
          mov (reg 1) (imm 0);
          jmp "a";
          label "a";
          label "b";
          add (reg 1) (imm 1);
          ret;
        ]
  in
  let f = Program.func prog 0 in
  Alcotest.(check int) "blocks" 2 (Program.block_count f);
  Alcotest.(check (list int)) "jmp target" [ 1 ] (Program.block_succs f 0)

let test_instr_counts () =
  let prog =
    assemble_one Build.[ mov (reg 1) (imm 0); add (reg 1) (imm 2); ret ]
  in
  Alcotest.(check int) "instrs" 3 (Program.total_instr_count prog)

let test_structured_while_terminates_shape () =
  let prog =
    assemble_one
      Build.
        [
          seq [ while_ Cond.Lt (reg 1) (imm 4) [ add (reg 1) (imm 1) ] ];
          ret;
        ]
  in
  let f = Program.func prog 0 in
  (* head [cmp; jcc] | body [add; jmp] | exit [ret] *)
  Alcotest.(check int) "blocks" 3 (Program.block_count f)

let () =
  Alcotest.run "prog"
    [
      ( "assembler",
        [
          Alcotest.test_case "block splitting" `Quick test_block_splitting;
          Alcotest.test_case "call splits" `Quick test_call_splits_block;
          Alcotest.test_case "lock splits" `Quick test_lock_splits_block;
          Alcotest.test_case "if/else diamond" `Quick test_if_else_shape;
          Alcotest.test_case "undefined label" `Quick test_undefined_label;
          Alcotest.test_case "undefined function" `Quick test_undefined_function;
          Alcotest.test_case "duplicate function" `Quick test_duplicate_function;
          Alcotest.test_case "fallthrough off end" `Quick test_fallthrough_off_end;
          Alcotest.test_case "two mem operands" `Quick
            test_two_memory_operands_rejected;
          Alcotest.test_case "duplicate label" `Quick test_duplicate_label;
          Alcotest.test_case "label aliasing" `Quick test_consecutive_labels_alias;
          Alcotest.test_case "instr counts" `Quick test_instr_counts;
          Alcotest.test_case "while shape" `Quick
            test_structured_while_terminates_shape;
        ] );
    ]
