(* Tests for the statistics library and the table renderer. *)

module Stats = Threadfuser_stats.Stats
module Table = Threadfuser_report.Table

let feq = Alcotest.(check (float 1e-9))

let test_mean_stddev () =
  feq "mean" 2.0 (Stats.mean [| 1.0; 2.0; 3.0 |]);
  feq "stddev" (sqrt (2.0 /. 3.0)) (Stats.stddev [| 1.0; 2.0; 3.0 |])

let test_mae () =
  feq "mae" 0.5
    (Stats.mae ~predicted:[| 1.0; 2.0 |] ~reference:[| 1.5; 2.5 |]);
  feq "mae zero" 0.0 (Stats.mae ~predicted:[| 3.0 |] ~reference:[| 3.0 |])

let test_mape () =
  feq "mape" 0.25 (Stats.mape ~predicted:[| 1.25; 1.5 |] ~reference:[| 1.0; 2.0 |])

let test_pearson_perfect () =
  feq "positive" 1.0 (Stats.pearson [| 1.0; 2.0; 3.0 |] [| 2.0; 4.0; 6.0 |]);
  feq "negative" (-1.0) (Stats.pearson [| 1.0; 2.0; 3.0 |] [| 3.0; 2.0; 1.0 |]);
  feq "constant" 0.0 (Stats.pearson [| 1.0; 1.0; 1.0 |] [| 1.0; 2.0; 3.0 |])

let test_geomean () =
  feq "geomean" 2.0 (Stats.geomean [| 1.0; 2.0; 4.0 |]);
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Stats.geomean: non-positive entry") (fun () ->
      ignore (Stats.geomean [| 1.0; 0.0 |]))

let test_within_stddev () =
  let f = Stats.within_stddev [| 0.0; 0.0; 0.0; 10.0 |] in
  feq "within 1 sd" 0.75 f

let test_within_stddev_empty () =
  Alcotest.check_raises "empty input"
    (Invalid_argument "Stats.within_stddev: empty") (fun () ->
      ignore (Stats.within_stddev [||]))

let test_mape_empty () =
  (* no reference points means no measurable error, not a crash *)
  feq "empty arrays" 0.0 (Stats.mape ~predicted:[||] ~reference:[||]);
  (* all-zero references contribute nothing either *)
  feq "zero references" 0.0
    (Stats.mape ~predicted:[| 1.0; 2.0 |] ~reference:[| 0.0; 0.0 |])

let test_percentile () =
  let a = [| 3.0; 1.0; 2.0; 4.0 |] in
  feq "p0 is the min" 1.0 (Stats.percentile ~q:0.0 a);
  feq "p100 is the max" 4.0 (Stats.percentile ~q:1.0 a);
  feq "median interpolates" 2.5 (Stats.percentile ~q:0.5 a);
  feq "p25 lands on a sample" 1.75 (Stats.percentile ~q:0.25 a);
  feq "single sample" 7.0 (Stats.percentile ~q:0.9 [| 7.0 |]);
  Alcotest.check_raises "empty" (Invalid_argument "Stats.percentile: empty")
    (fun () -> ignore (Stats.percentile ~q:0.5 [||]));
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Stats.percentile: q out of [0,1]") (fun () ->
      ignore (Stats.percentile ~q:1.5 [| 1.0 |]))

let prop_percentile_bounds =
  QCheck.Test.make ~name:"percentile within [min,max] and monotone" ~count:300
    QCheck.(
      pair
        (list_of_size (QCheck.Gen.int_range 1 30) (float_bound_exclusive 100.0))
        (pair (float_range 0.0 1.0) (float_range 0.0 1.0)))
    (fun (l, (q1, q2)) ->
      let a = Array.of_list l in
      let lo = Array.fold_left min a.(0) a
      and hi = Array.fold_left max a.(0) a in
      let p1 = Stats.percentile ~q:(min q1 q2) a
      and p2 = Stats.percentile ~q:(max q1 q2) a in
      p1 >= lo -. 1e-9 && p2 <= hi +. 1e-9 && p1 <= p2 +. 1e-9)

let prop_pearson_bounds =
  QCheck.Test.make ~name:"pearson in [-1,1]" ~count:300
    QCheck.(pair (list_of_size (QCheck.Gen.int_range 2 20) (float_bound_exclusive 100.0))
              (list_of_size (QCheck.Gen.int_range 2 20) (float_bound_exclusive 100.0)))
    (fun (x, y) ->
      let n = min (List.length x) (List.length y) in
      QCheck.assume (n >= 2);
      let x = Array.of_list (List.filteri (fun i _ -> i < n) x) in
      let y = Array.of_list (List.filteri (fun i _ -> i < n) y) in
      let r = Stats.pearson x y in
      r >= -1.0 -. 1e-9 && r <= 1.0 +. 1e-9)

let prop_mae_nonneg =
  QCheck.Test.make ~name:"mae >= 0 and symmetric-ish" ~count:300
    QCheck.(list_of_size (QCheck.Gen.int_range 1 20) (pair (float_bound_exclusive 50.0) (float_bound_exclusive 50.0)))
    (fun pairs ->
      let p = Array.of_list (List.map fst pairs) in
      let r = Array.of_list (List.map snd pairs) in
      let m1 = Stats.mae ~predicted:p ~reference:r in
      let m2 = Stats.mae ~predicted:r ~reference:p in
      m1 >= 0.0 && abs_float (m1 -. m2) < 1e-9)

let prop_geomean_le_mean =
  QCheck.Test.make ~name:"geomean <= arithmetic mean" ~count:300
    QCheck.(list_of_size (QCheck.Gen.int_range 1 20) (float_range 0.001 100.0))
    (fun l ->
      let a = Array.of_list l in
      Stats.geomean a <= Stats.mean a +. 1e-9)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_table_render () =
  let t = Table.create [ ("name", Table.L); ("value", Table.R) ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "23" ];
  let buf = Buffer.create 64 in
  Table.render (Fmt.with_buffer buf) t;
  let s = Buffer.contents buf in
  Alcotest.(check bool) "contains header" true (contains s "name");
  Alcotest.(check bool) "contains row" true (contains s "alpha")

let test_table_csv () =
  let t = Table.create [ ("a", Table.L); ("b", Table.R) ] in
  Table.add_row t [ "x,y"; "2" ];
  Alcotest.(check string) "csv quoting" "a,b\n\"x,y\",2\n" (Table.to_csv t)

let test_table_mismatch () =
  let t = Table.create [ ("a", Table.L) ] in
  Alcotest.check_raises "cell count"
    (Invalid_argument "Table.add_row: cell count mismatch") (fun () ->
      Table.add_row t [ "1"; "2" ])

(* -- JSON ------------------------------------------------------------------ *)

module Json = Threadfuser_report.Json
module Report_json = Threadfuser_report.Report_json

let test_json_basics () =
  Alcotest.(check string) "null" "null" (Json.to_string Json.Null);
  Alcotest.(check string) "int" "42" (Json.to_string (Json.Int 42));
  Alcotest.(check string) "bool" "true" (Json.to_string (Json.Bool true));
  Alcotest.(check string) "empty list" "[]" (Json.to_string (Json.List []));
  Alcotest.(check string) "empty obj" "{}" (Json.to_string (Json.Obj []))

let test_json_escaping () =
  let s = Json.to_string (Json.String "a\"b\\c\nd") in
  Alcotest.(check string) "escaped" "\"a\\\"b\\\\c\\nd\"" s

let test_json_nesting () =
  let v = Json.Obj [ ("xs", Json.List [ Json.Int 1; Json.Int 2 ]) ] in
  let s = Json.to_string v in
  Alcotest.(check bool) "contains key" true (contains s "\"xs\"");
  Alcotest.(check bool) "contains items" true (contains s "1" && contains s "2")

let test_report_json_fields () =
  let r =
    Threadfuser_workloads.Workload.analyze
      (Threadfuser_workloads.Registry.find "bfs")
  in
  let s = Report_json.to_string r.Threadfuser.Analyzer.report in
  List.iter
    (fun key -> Alcotest.(check bool) (key ^ " present") true (contains s key))
    [
      "simt_efficiency"; "per_function"; "per_warp"; "synchronization";
      "transactions_per_instruction"; "traced_fraction"; "barrier_syncs";
    ]

let test_json_parse_roundtrip () =
  let v =
    Json.Obj
      [
        ("a", Json.List [ Json.Int 1; Json.Float 2.5; Json.Null ]);
        ("s", Json.String "x\"y\nz");
        ("b", Json.Bool false);
        ("nested", Json.Obj [ ("k", Json.String "") ]);
      ]
  in
  match Json.parse (Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "roundtrips" true (v = v')
  | Error m -> Alcotest.failf "roundtrip parse failed: %s" m

let test_json_parse_errors () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "accepted malformed input %S" s
      | Error _ -> ())
    [
      ""; "{"; "[1,"; "{\"a\" 1}"; "[1] trailing"; "\"unterminated";
      "nul"; "{\"a\":}"; "01x"; "\"bad \\q escape\"";
    ]

let test_json_parse_numbers () =
  Alcotest.(check bool) "int stays int" true (Json.parse "42" = Ok (Json.Int 42));
  Alcotest.(check bool) "negative" true (Json.parse "-7" = Ok (Json.Int (-7)));
  Alcotest.(check bool) "decimal is float" true
    (Json.parse "1.5" = Ok (Json.Float 1.5));
  Alcotest.(check bool) "exponent is float" true
    (Json.parse "2e3" = Ok (Json.Float 2000.0))

let () =
  Alcotest.run "stats"
    [
      ( "stats",
        [
          Alcotest.test_case "mean/stddev" `Quick test_mean_stddev;
          Alcotest.test_case "mae" `Quick test_mae;
          Alcotest.test_case "mape" `Quick test_mape;
          Alcotest.test_case "pearson" `Quick test_pearson_perfect;
          Alcotest.test_case "geomean" `Quick test_geomean;
          Alcotest.test_case "within stddev" `Quick test_within_stddev;
          Alcotest.test_case "within stddev empty" `Quick
            test_within_stddev_empty;
          Alcotest.test_case "mape empty" `Quick test_mape_empty;
          Alcotest.test_case "percentile" `Quick test_percentile;
          QCheck_alcotest.to_alcotest prop_percentile_bounds;
          QCheck_alcotest.to_alcotest prop_pearson_bounds;
          QCheck_alcotest.to_alcotest prop_mae_nonneg;
          QCheck_alcotest.to_alcotest prop_geomean_le_mean;
        ] );
      ( "json",
        [
          Alcotest.test_case "basics" `Quick test_json_basics;
          Alcotest.test_case "escaping" `Quick test_json_escaping;
          Alcotest.test_case "nesting" `Quick test_json_nesting;
          Alcotest.test_case "report fields" `Quick test_report_json_fields;
          Alcotest.test_case "parse roundtrip" `Quick test_json_parse_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "parse numbers" `Quick test_json_parse_numbers;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "csv" `Quick test_table_csv;
          Alcotest.test_case "mismatch" `Quick test_table_mismatch;
        ] );
    ]
