(* Tests for trace events, statistics and binary serialization. *)

open Threadfuser_trace

let access ioff addr size is_store = { Event.ioff; addr; size; is_store }

let sample_events =
  [|
    Event.Block
      {
        func = 0;
        block = 0;
        n_instr = 4;
        accesses = [| access 1 0x1000 8 false; access 2 0x2008 4 true |];
      };
    Event.Call 3;
    Event.Block { func = 3; block = 0; n_instr = 2; accesses = [||] };
    Event.Lock_acq 0x500;
    Event.Skip { reason = Event.Spin; n_instr = 24 };
    Event.Block { func = 3; block = 1; n_instr = 1; accesses = [||] };
    Event.Lock_rel 0x500;
    Event.Return;
    Event.Skip { reason = Event.Io; n_instr = 100 };
    Event.Block { func = 0; block = 1; n_instr = 1; accesses = [||] };
    Event.Return;
  |]

let sample_trace = { Thread_trace.tid = 7; events = sample_events }

let test_stats () =
  let s = Thread_trace.stats sample_trace in
  Alcotest.(check int) "traced" 8 s.Thread_trace.traced_instrs;
  Alcotest.(check int) "io" 100 s.Thread_trace.skipped_io;
  Alcotest.(check int) "spin" 24 s.Thread_trace.skipped_spin;
  Alcotest.(check int) "blocks" 4 s.Thread_trace.blocks;
  Alcotest.(check int) "loads" 1 s.Thread_trace.loads;
  Alcotest.(check int) "stores" 1 s.Thread_trace.stores;
  Alcotest.(check int) "locks" 2 s.Thread_trace.lock_ops

let test_roundtrip () =
  let traces = [| sample_trace; { Thread_trace.tid = 9; events = [||] } |] in
  let s = Serial.to_string traces in
  let back = Serial.of_string s in
  Alcotest.(check int) "thread count" 2 (Array.length back);
  Alcotest.(check int) "tid" 7 back.(0).Thread_trace.tid;
  Alcotest.(check int) "event count" (Array.length sample_events)
    (Array.length back.(0).Thread_trace.events);
  Array.iteri
    (fun i e ->
      Alcotest.(check bool)
        (Printf.sprintf "event %d" i)
        true
        (Event.equal e back.(0).Thread_trace.events.(i)))
    sample_events

let test_bad_magic () =
  match Serial.of_string "NOTATRACE" with
  | exception Serial.Corrupt _ -> ()
  | _ -> Alcotest.fail "expected Corrupt"

let test_truncated () =
  let s = Serial.to_string [| sample_trace |] in
  let cut = String.sub s 0 (String.length s - 3) in
  match Serial.of_string cut with
  | exception Serial.Corrupt _ -> ()
  | _ -> Alcotest.fail "expected Corrupt on truncation"

let test_file_roundtrip () =
  let path = Filename.temp_file "tftrace" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Serial.to_file path [| sample_trace |];
      let back = Serial.of_file path in
      Alcotest.(check int) "tid" 7 back.(0).Thread_trace.tid)

(* Random event generator for the round-trip property. *)
let gen_event =
  let open QCheck.Gen in
  frequency
    [
      ( 4,
        let* func = int_bound 20 in
        let* block = int_bound 50 in
        let* n_instr = int_range 1 30 in
        let* n_acc = int_bound 4 in
        let* accs =
          list_repeat n_acc
            (let* ioff = int_bound 29 in
             let* addr = int_bound 1_000_000 in
             let* size = oneofl [ 1; 2; 4; 8 ] in
             let* is_store = bool in
             return { Event.ioff; addr; size; is_store })
        in
        return
          (Event.Block { func; block; n_instr; accesses = Array.of_list accs })
      );
      (1, map (fun f -> Event.Call f) (int_bound 20));
      (1, return Event.Return);
      (1, map (fun a -> Event.Lock_acq a) (int_bound 100_000));
      (1, map (fun a -> Event.Lock_rel a) (int_bound 100_000));
      ( 1,
        let* reason = oneofl [ Event.Io; Event.Spin ] in
        let* n_instr = int_range 1 1000 in
        return (Event.Skip { reason; n_instr }) );
    ]

let prop_roundtrip =
  QCheck.Test.make ~name:"serialization roundtrip" ~count:100
    (QCheck.make QCheck.Gen.(list_size (int_bound 50) gen_event))
    (fun events ->
      let t = { Thread_trace.tid = 0; events = Array.of_list events } in
      let back = Serial.of_string (Serial.to_string [| t |]) in
      Array.length back = 1
      && Array.length back.(0).Thread_trace.events = List.length events
      && Array.for_all2 Event.equal back.(0).Thread_trace.events t.events)

let prop_varint =
  QCheck.Test.make ~name:"varint roundtrip (signed)" ~count:500
    QCheck.(oneof [ small_signed_int; int ])
    (fun n ->
      let buf = Buffer.create 10 in
      Serial.write_int buf n;
      let r = { Serial.data = Buffer.contents buf; pos = 0 } in
      Serial.read_int r = n)

let () =
  Alcotest.run "trace"
    [
      ( "trace",
        [
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "bad magic" `Quick test_bad_magic;
          Alcotest.test_case "truncated" `Quick test_truncated;
          Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
          QCheck_alcotest.to_alcotest prop_roundtrip;
          QCheck_alcotest.to_alcotest prop_varint;
        ] );
    ]
