(* Tests for trace events, statistics and binary serialization. *)

open Threadfuser_trace

let access ioff addr size is_store = { Event.ioff; addr; size; is_store }

let sample_events =
  [|
    Event.Block
      {
        func = 0;
        block = 0;
        n_instr = 4;
        accesses = [| access 1 0x1000 8 false; access 2 0x2008 4 true |];
      };
    Event.Call 3;
    Event.Block { func = 3; block = 0; n_instr = 2; accesses = [||] };
    Event.Lock_acq 0x500;
    Event.Skip { reason = Event.Spin; n_instr = 24 };
    Event.Block { func = 3; block = 1; n_instr = 1; accesses = [||] };
    Event.Lock_rel 0x500;
    Event.Return;
    Event.Skip { reason = Event.Io; n_instr = 100 };
    Event.Block { func = 0; block = 1; n_instr = 1; accesses = [||] };
    Event.Return;
  |]

let sample_trace = { Thread_trace.tid = 7; events = sample_events }

let test_stats () =
  let s = Thread_trace.stats sample_trace in
  Alcotest.(check int) "traced" 8 s.Thread_trace.traced_instrs;
  Alcotest.(check int) "io" 100 s.Thread_trace.skipped_io;
  Alcotest.(check int) "spin" 24 s.Thread_trace.skipped_spin;
  Alcotest.(check int) "blocks" 4 s.Thread_trace.blocks;
  Alcotest.(check int) "loads" 1 s.Thread_trace.loads;
  Alcotest.(check int) "stores" 1 s.Thread_trace.stores;
  Alcotest.(check int) "locks" 2 s.Thread_trace.lock_ops

let test_roundtrip () =
  let traces = [| sample_trace; { Thread_trace.tid = 9; events = [||] } |] in
  let s = Serial.to_string traces in
  let back = Serial.of_string s in
  Alcotest.(check int) "thread count" 2 (Array.length back);
  Alcotest.(check int) "tid" 7 back.(0).Thread_trace.tid;
  Alcotest.(check int) "event count" (Array.length sample_events)
    (Array.length back.(0).Thread_trace.events);
  Array.iteri
    (fun i e ->
      Alcotest.(check bool)
        (Printf.sprintf "event %d" i)
        true
        (Event.equal e back.(0).Thread_trace.events.(i)))
    sample_events

let test_bad_magic () =
  match Serial.of_string "NOTATRACE" with
  | exception Serial.Corrupt _ -> ()
  | _ -> Alcotest.fail "expected Corrupt"

let test_truncated () =
  let s = Serial.to_string [| sample_trace |] in
  let cut = String.sub s 0 (String.length s - 3) in
  match Serial.of_string cut with
  | exception Serial.Corrupt _ -> ()
  | _ -> Alcotest.fail "expected Corrupt on truncation"

let test_file_roundtrip () =
  let path = Filename.temp_file "tftrace" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Serial.to_file path [| sample_trace |];
      let back = Serial.of_file path in
      Alcotest.(check int) "tid" 7 back.(0).Thread_trace.tid)

(* Random event generator for the round-trip property. *)
let gen_event =
  let open QCheck.Gen in
  frequency
    [
      ( 4,
        let* func = int_bound 20 in
        let* block = int_bound 50 in
        let* n_instr = int_range 1 30 in
        let* n_acc = int_bound 4 in
        let* accs =
          list_repeat n_acc
            (let* ioff = int_bound 29 in
             let* addr = int_bound 1_000_000 in
             let* size = oneofl [ 1; 2; 4; 8 ] in
             let* is_store = bool in
             return { Event.ioff; addr; size; is_store })
        in
        return
          (Event.Block { func; block; n_instr; accesses = Array.of_list accs })
      );
      (1, map (fun f -> Event.Call f) (int_bound 20));
      (1, return Event.Return);
      (1, map (fun a -> Event.Lock_acq a) (int_bound 100_000));
      (1, map (fun a -> Event.Lock_rel a) (int_bound 100_000));
      ( 1,
        let* reason = oneofl [ Event.Io; Event.Spin ] in
        let* n_instr = int_range 1 1000 in
        return (Event.Skip { reason; n_instr }) );
    ]

let prop_roundtrip =
  QCheck.Test.make ~name:"serialization roundtrip" ~count:100
    (QCheck.make QCheck.Gen.(list_size (int_bound 50) gen_event))
    (fun events ->
      let t = { Thread_trace.tid = 0; events = Array.of_list events } in
      let back = Serial.of_string (Serial.to_string [| t |]) in
      Array.length back = 1
      && Array.length back.(0).Thread_trace.events = List.length events
      && Array.for_all2 Event.equal back.(0).Thread_trace.events t.events)

(* ---- robustness: hostile input must fail with a typed error ----------- *)

module Tf_error = Threadfuser_util.Tf_error

(* A second trace with the sync events the sample lacks, so the sweep also
   exercises barrier decoding and the validator's lock/barrier checks. *)
let sync_trace =
  {
    Thread_trace.tid = 8;
    events =
      [|
        Event.Block { func = 0; block = 0; n_instr = 2; accesses = [||] };
        Event.Barrier 0x900;
        Event.Lock_acq 0x500;
        Event.Block { func = 0; block = 1; n_instr = 1; accesses = [||] };
        Event.Lock_rel 0x500;
        Event.Return;
      |];
  }

(* Decode + validate; the only acceptable failures are the typed ones. *)
let decode_checked what s =
  match
    let traces = Serial.of_string s in
    ignore (Validate.all traces)
  with
  | () -> ()
  | exception Serial.Corrupt _ -> ()
  | exception Tf_error.Error _ -> ()
  | exception e ->
      Alcotest.failf "%s: escaped with %s" what (Printexc.to_string e)

(* Every single-byte truncation and every single-bit flip of a serialized
   trace set must either decode (possibly to garbage the validator flags)
   or raise [Corrupt] / [Tf_error.Error] — never [Invalid_argument],
   [Not_found], out-of-memory allocation or a hang. *)
let test_truncation_sweep () =
  let s = Serial.to_string [| sample_trace; sync_trace |] in
  for keep = 0 to String.length s - 1 do
    decode_checked
      (Printf.sprintf "truncate to %d bytes" keep)
      (String.sub s 0 keep)
  done

let test_bitflip_sweep () =
  let s = Serial.to_string [| sample_trace; sync_trace |] in
  for off = 0 to String.length s - 1 do
    for bit = 0 to 7 do
      let b = Bytes.of_string s in
      Bytes.set b off (Char.chr (Char.code s.[off] lxor (1 lsl bit)));
      decode_checked
        (Printf.sprintf "flip byte %d bit %d" off bit)
        (Bytes.to_string b)
    done
  done

(* A run of continuation bytes longer than any honest 63-bit encoding must
   be rejected, not shifted past the word size. *)
let test_overlong_varint () =
  let r = { Serial.data = String.make 12 '\x80'; pos = 0 } in
  match Serial.read_uint r with
  | exception Serial.Corrupt _ -> ()
  | n -> Alcotest.failf "overlong varint decoded to %d" n

(* A length header larger than the remaining input must fail as [Corrupt]
   before it reaches [Array.init] — not attempt a giant allocation. *)
let test_huge_count () =
  let buf = Buffer.create 16 in
  Buffer.add_string buf "TFTRACE1";
  Serial.write_uint buf 0x3FFF_FFFF_FFFF;
  (match Serial.of_string (Buffer.contents buf) with
  | exception Serial.Corrupt _ -> ()
  | _ -> Alcotest.fail "huge thread count accepted");
  (* same for a per-thread event count *)
  let buf = Buffer.create 16 in
  Buffer.add_string buf "TFTRACE1";
  Serial.write_uint buf 1 (* n_threads *);
  Serial.write_uint buf 0 (* tid *);
  Serial.write_uint buf 0x3FFF_FFFF_FFFF;
  match Serial.of_string (Buffer.contents buf) with
  | exception Serial.Corrupt _ -> ()
  | _ -> Alcotest.fail "huge event count accepted"

(* The validator's structural diagnostics on intact traces. *)
let test_validate () =
  (* each is clean on its own; together they disagree on the barrier
     sequence, which the cross-thread majority vote must flag *)
  List.iter
    (fun t ->
      Alcotest.(check (list string))
        "clean trace" []
        (Validate.all [| t |]
        |> List.filter (fun d -> d.Tf_error.severity = Tf_error.Error)
        |> List.map Tf_error.to_string))
    [ sample_trace; sync_trace ];
  (match
     List.filter
       (fun d -> d.Tf_error.kind = Tf_error.Barrier_mismatch)
       (Validate.all [| sample_trace; sample_trace; sync_trace |])
   with
  | [] -> Alcotest.fail "divergent barrier sequence not flagged"
  | _ -> ());
  let unbalanced =
    {
      Thread_trace.tid = 3;
      events =
        [|
          Event.Block { func = 0; block = 0; n_instr = 1; accesses = [||] };
          Event.Return;
          Event.Return;
        |];
    }
  in
  (match Validate.all [| unbalanced |] with
  | [] -> Alcotest.fail "extra Return not flagged"
  | d :: _ ->
      Alcotest.(check string)
        "kind" "unbalanced-call"
        (Tf_error.kind_name d.Tf_error.kind));
  let held =
    {
      Thread_trace.tid = 4;
      events =
        [|
          Event.Lock_acq 0xbeef;
          Event.Block { func = 0; block = 0; n_instr = 1; accesses = [||] };
        |];
    }
  in
  match
    List.filter
      (fun d -> d.Tf_error.kind = Tf_error.Deadlock)
      (Validate.all [| held |])
  with
  | [] -> Alcotest.fail "never-released lock not flagged as deadlock"
  | _ -> ()

let prop_varint =
  QCheck.Test.make ~name:"varint roundtrip (signed)" ~count:500
    QCheck.(oneof [ small_signed_int; int ])
    (fun n ->
      let buf = Buffer.create 10 in
      Serial.write_int buf n;
      let r = { Serial.data = Buffer.contents buf; pos = 0 } in
      Serial.read_int r = n)

let () =
  Alcotest.run "trace"
    [
      ( "trace",
        [
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "bad magic" `Quick test_bad_magic;
          Alcotest.test_case "truncated" `Quick test_truncated;
          Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
          QCheck_alcotest.to_alcotest prop_roundtrip;
          QCheck_alcotest.to_alcotest prop_varint;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "truncation sweep" `Quick test_truncation_sweep;
          Alcotest.test_case "bit-flip sweep" `Quick test_bitflip_sweep;
          Alcotest.test_case "overlong varint" `Quick test_overlong_varint;
          Alcotest.test_case "huge length header" `Quick test_huge_count;
          Alcotest.test_case "validate diagnostics" `Quick test_validate;
        ] );
    ]
