# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench csv examples fuzz clean

all: build

build:
	dune build @all

test:
	dune runtest

# regenerate every paper table/figure (text to stdout)
bench:
	dune exec bench/main.exe

# same, also dropping one CSV per table under artifacts/
csv:
	dune exec bench/main.exe -- --csv artifacts

examples:
	dune exec examples/quickstart.exe
	dune exec examples/microservice_analysis.exe
	dune exec examples/warp_width_study.exe
	dune exec examples/porting_advisor.exe
	dune exec examples/accelerator_design.exe

# seeded corruption campaign over every registered workload (fixed seeds,
# so runs are reproducible; see docs/robustness.md).  A 100-seed smoke
# variant of the same campaign runs as part of `dune runtest`.
fuzz:
	dune exec bin/threadfuser_cli.exe -- fuzz -n 1000 --seed 1 -t 16

clean:
	dune clean
