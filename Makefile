# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench csv examples clean

all: build

build:
	dune build @all

test:
	dune runtest

# regenerate every paper table/figure (text to stdout)
bench:
	dune exec bench/main.exe

# same, also dropping one CSV per table under artifacts/
csv:
	dune exec bench/main.exe -- --csv artifacts

examples:
	dune exec examples/quickstart.exe
	dune exec examples/microservice_analysis.exe
	dune exec examples/warp_width_study.exe
	dune exec examples/porting_advisor.exe
	dune exec examples/accelerator_design.exe

clean:
	dune clean
