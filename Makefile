# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench bench-regress csv examples fuzz lint profile check clean suite suite-cached

all: build

build:
	dune build @all

test:
	dune runtest

# the default verification path: build, tests, format check, and a
# profiled pipeline run whose trace artifact is validated
check: build test lint profile

# format check; skipped (not failed) where ocamlformat isn't installed
lint:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt; \
	else \
		echo "make lint: ocamlformat not installed; skipping format check"; \
	fi

# run the instrumented pipeline on bfs and check the emitted Chrome trace
# is well-formed JSON (the CLI itself re-parses it and exits 3 if not)
profile:
	dune exec bin/threadfuser_cli.exe -- profile bfs \
		--trace-out /tmp/threadfuser-profile-trace.json \
		--metrics-out /tmp/threadfuser-profile-metrics.txt
	@echo "trace:   /tmp/threadfuser-profile-trace.json (open in ui.perfetto.dev)"
	@echo "metrics: /tmp/threadfuser-profile-metrics.txt"

# regenerate every paper table/figure (text to stdout)
bench:
	dune exec bench/main.exe

# regression gate: re-analyze each baseline workload and `threadfuser
# diff` its JSON report against the committed baseline.  Replay is
# deterministic, so any drift is a real behaviour change; the tolerance
# only forgives float formatting.  Exits 5 on regression.
# Regenerate baselines (after an INTENDED change) with:
#   dune exec bin/threadfuser_cli.exe -- analyze <w> --json > bench/baselines/<w>.json
REGRESS_WORKLOADS = bfs hdsearch-mid vectoradd
REGRESS_TOLERANCE = 0.02
bench-regress: build
	@for w in $(REGRESS_WORKLOADS); do \
		echo "== $$w vs bench/baselines/$$w.json (tolerance $(REGRESS_TOLERANCE)) =="; \
		dune exec --no-build bin/threadfuser_cli.exe -- analyze $$w --json \
			> /tmp/threadfuser-regress-$$w.json || exit $$?; \
		dune exec --no-build bin/threadfuser_cli.exe -- diff \
			bench/baselines/$$w.json /tmp/threadfuser-regress-$$w.json \
			--tolerance $(REGRESS_TOLERANCE) || exit $$?; \
	done
	@echo "== parallel replay determinism (-j 4 vs baseline run) =="; \
	for w in $(REGRESS_WORKLOADS); do \
		dune exec --no-build bin/threadfuser_cli.exe -- analyze $$w --json -j 4 \
			> /tmp/threadfuser-regress-$$w-j4.json || exit $$?; \
		cmp -s /tmp/threadfuser-regress-$$w.json \
			/tmp/threadfuser-regress-$$w-j4.json \
			|| { echo "parallel replay diverged for $$w"; exit 5; }; \
		echo "$$w: -j 4 byte-identical"; \
	done
	@# Speedup gate over the last `make bench` run, if one is present.
	@# Legs marked advisory (requested domains > available cores measure
	@# time-slicing, not scaling) are skipped, never baselined.
	@if [ -f BENCH_analyzer_par.json ]; then \
		echo "== analyzer_par speedup gate (advisory legs skipped) =="; \
		python3 scripts/check_par_speedup.py BENCH_analyzer_par.json || exit $$?; \
	else \
		echo "== analyzer_par speedup gate: no BENCH_analyzer_par.json (run 'make bench'), skipped =="; \
	fi
	@# Same gate over the cycle-level simulator scaling artifact: gpusim's
	@# SM partition and cpusim's core partition at -j 1/2/4, plus the
	@# byte-identity / epoch-invariance flags (those gate even when the
	@# host downgrades speedups to advisory).
	@if [ -f BENCH_sim_par.json ]; then \
		echo "== sim_par speedup gate (advisory legs skipped) =="; \
		python3 scripts/check_par_speedup.py BENCH_sim_par.json || exit $$?; \
	else \
		echo "== sim_par speedup gate: no BENCH_sim_par.json (run 'make bench'), skipped =="; \
	fi
	@# Observability overhead gate over the last `make bench` run: the
	@# collector and the flight-recorder ring must stay within 1.20x of
	@# the collector-off analyzer (paired interleaved measurement).
	@if [ -f BENCH_pipeline.json ]; then \
		echo "== obs overhead gate =="; \
		python3 scripts/check_obs_ratio.py BENCH_pipeline.json || exit $$?; \
	else \
		echo "== obs overhead gate: no BENCH_pipeline.json (run 'make bench'), skipped =="; \
	fi

# supervised batch analysis of a small workload set (fork isolation,
# parallel, with deadlines); journal/reports/manifest land in .tfsuite/.
# Resume an interrupted batch with:
#   dune exec bin/threadfuser_cli.exe -- suite --resume
suite: build
	dune exec --no-build bin/threadfuser_cli.exe -- suite \
		vectoradd uncoalesced bfs --jobs 2 --deadline 60 --retries 1

# the same batch through the artifact cache, twice: the second pass must
# serve every job as a verified hit (see docs/robustness.md §9), then
# scrub/verify leave the store provably clean.
suite-cached: build
	dune exec --no-build bin/threadfuser_cli.exe -- suite \
		vectoradd uncoalesced bfs --jobs 2 --cache --dir .tfsuite-cold
	dune exec --no-build bin/threadfuser_cli.exe -- suite \
		vectoradd uncoalesced bfs --jobs 2 --cache --dir .tfsuite-warm
	dune exec --no-build bin/threadfuser_cli.exe -- cache scrub
	dune exec --no-build bin/threadfuser_cli.exe -- cache verify
	dune exec --no-build bin/threadfuser_cli.exe -- cache stat

# same, also dropping one CSV per table under artifacts/
csv:
	dune exec bench/main.exe -- --csv artifacts

examples:
	dune exec examples/quickstart.exe
	dune exec examples/microservice_analysis.exe
	dune exec examples/warp_width_study.exe
	dune exec examples/porting_advisor.exe
	dune exec examples/accelerator_design.exe

# seeded corruption campaign over every registered workload (fixed seeds,
# so runs are reproducible; see docs/robustness.md).  A 100-seed smoke
# variant of the same campaign runs as part of `dune runtest`.
fuzz:
	dune exec bin/threadfuser_cli.exe -- fuzz -n 1000 --seed 1 -t 16

clean:
	dune clean
