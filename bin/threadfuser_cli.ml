(* The ThreadFuser command-line tool.

     threadfuser list                         workload catalog (Table I)
     threadfuser analyze pigz -w 16 -O O3     efficiency + divergence report
     threadfuser sweep pigz                   warp-width sweep
     threadfuser trace bfs -o bfs.tftrace     capture a trace file
     threadfuser check bfs.tftrace bfs        validate a trace file
     threadfuser fuzz bfs -n 1000             seeded corruption campaign
     threadfuser simulate vectoradd           cycle-level speedup projection
     threadfuser profile bfs --trace-out t.json   phase timing + event trace
     threadfuser correlate                    the Fig. 5 correlation study
     threadfuser blame hdsearch-mid           divergence bottleneck ranking
     threadfuser diff base.json new.json      report regression gate
     threadfuser suite bfs pigz -j 4          supervised batch analysis
     threadfuser suite --resume               finish an interrupted batch
     threadfuser suite --cache                skip jobs via the artifact cache
     threadfuser cache stat|verify|scrub|gc   artifact-store maintenance
     threadfuser trace bfs --pack             compact TFPACK1 trace container
     threadfuser serve bfs --socket tf.sock   streaming analysis daemon
     threadfuser client bfs.tftrace           stream a trace to the daemon
     threadfuser stat --prom                  scrape a live daemon's stats
     threadfuser top --interval 2             rolling daemon rate lines

   Observability (docs/observability.md): --log-level / TF_LOG control the
   structured logger; --trace-out writes a Perfetto-loadable Chrome trace
   of the run; --metrics-out writes a Prometheus text exposition.

   Exit codes: 0 success, 1 usage error, 2 corrupt input, 3 analysis
   degraded (partial report / validation errors), 5 diff regression,
   6 daemon busy. *)

open Cmdliner
module W = Threadfuser_workloads.Workload
module Registry = Threadfuser_workloads.Registry
module Compiler = Threadfuser_compiler.Compiler
module Analyzer = Threadfuser.Analyzer
module Metrics = Threadfuser.Metrics
module Serial = Threadfuser_trace.Serial
module Pack = Threadfuser_trace.Pack
module Validate = Threadfuser_trace.Validate
module Cache = Threadfuser_cache.Cache
module Store_fault = Threadfuser_fault.Store_fault
module Tf_error = Threadfuser_util.Tf_error
module Injector = Threadfuser_fault.Injector
module Fuzz = Threadfuser_fault.Fuzz
module E = Threadfuser_experiments
module Obs = Threadfuser_obs.Obs
module Log = Threadfuser_obs.Log
module Trace_export = Threadfuser_obs.Trace_export
module Prom = Threadfuser_obs.Prom
module Runner = Threadfuser_runner.Runner
module Serve = Threadfuser_serve.Serve
module Sclient = Threadfuser_serve.Client
module Sprotocol = Threadfuser_serve.Protocol
module Stream = Threadfuser_trace.Stream
module Json = Threadfuser_report.Json
module Flamegraph = Threadfuser_report.Flamegraph
module Report_diff = Threadfuser_report.Report_diff

let exit_usage = 1
let exit_corrupt = 2
let exit_degraded = 3
let exit_regression = 5
let exit_busy = 6

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                     *)

let unknown_workload_msg s =
  match Registry.suggest s with
  | Some hint -> Printf.sprintf "unknown workload %s (did you mean %s?)" s hint
  | None -> Printf.sprintf "unknown workload %s (try `threadfuser list')" s

let workload_arg =
  let parse s =
    match Registry.find_opt s with
    | Some w -> Ok w
    | None -> Error (`Msg (unknown_workload_msg s))
  in
  let print ppf (w : W.t) = Fmt.string ppf w.W.name in
  Arg.conv (parse, print)

(* Like [workload_arg] but yields the registry name: suite jobs are keyed
   by name, resolved again inside each isolated attempt. *)
let workload_name_arg =
  let parse s =
    match Registry.find_opt s with
    | Some w -> Ok w.W.name
    | None -> Error (`Msg (unknown_workload_msg s))
  in
  Arg.conv (parse, Fmt.string)

let workload_pos =
  Arg.(
    required
    & pos 0 (some workload_arg) None
    & info [] ~docv:"WORKLOAD" ~doc:"Workload name (see $(b,threadfuser list)).")

let warp_size =
  Arg.(
    value & opt int 32
    & info [ "w"; "warp-size" ] ~docv:"N" ~doc:"Warp width (lanes per warp).")

let level_arg =
  let parse s =
    match Compiler.of_string s with
    | Some l -> Ok l
    | None -> Error (`Msg "optimization level must be O0, O1, O2 or O3")
  in
  Arg.conv (parse, Compiler.pp_level)

let opt_level =
  Arg.(
    value
    & opt level_arg Compiler.O1
    & info [ "O"; "opt-level" ] ~docv:"LEVEL"
        ~doc:"CPU compiler optimization level (O0..O3).")

let threads =
  Arg.(
    value
    & opt (some int) None
    & info [ "t"; "threads" ] ~docv:"N" ~doc:"Number of SIMT threads to trace.")

let ignore_sync =
  Arg.(
    value & flag
    & info [ "ignore-sync" ]
        ~doc:"Do not serialize same-lock lanes (lock-oblivious estimate).")

let domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "domains" ] ~docv:"N"
        ~doc:
          "Replay worker domains.  Warps shard across an OCaml 5 domain \
           pool with a deterministic reduction, so any value yields \
           byte-identical reports.  Defaults to $(b,TF_DOMAINS) when set, \
           else 1 (sequential).")

let schedule_conv =
  let parse s =
    match Threadfuser.Par_replay.schedule_of_string s with
    | Some sch -> Ok sch
    | None -> Error (`Msg "schedule must be static or dynamic")
  in
  Arg.conv
    (parse, fun ppf s -> Fmt.string ppf (Threadfuser.Par_replay.schedule_name s))

let schedule_arg =
  Arg.(
    value
    & opt schedule_conv Threadfuser.Par_replay.Static
    & info [ "schedule" ] ~docv:"POLICY"
        ~doc:
          "Warp-to-domain scheduling policy: $(b,static) contiguous chunks \
           (default) or $(b,dynamic) atomic work pulling for skewed warp \
           costs.  Output is byte-identical either way.")

let resolve_domains = function
  | Some d -> max 1 d
  | None -> Threadfuser.Par_replay.default_domains ()

let options ~warp_size ~ignore_sync =
  {
    Analyzer.default_options with
    warp_size;
    sync = (if ignore_sync then Threadfuser.Emulator.Ignore_sync else Threadfuser.Emulator.Serialize);
  }

(* ------------------------------------------------------------------ *)
(* Observability plumbing: --log-level, --trace-out, --metrics-out      *)

let log_level_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "quiet" | "off" | "none" -> Ok `Quiet
    | s -> (
        match Log.of_string s with
        | Some l -> Ok (`Level l)
        | None ->
            Error
              (`Msg "log level must be debug, info, warn, error or quiet"))
  in
  let print ppf = function
    | `Quiet -> Fmt.string ppf "quiet"
    | `Level l -> Fmt.string ppf (Log.to_string l)
  in
  Arg.conv (parse, print)

let log_level_arg =
  Arg.(
    value
    & opt (some log_level_conv) None
    & info [ "log-level" ] ~docv:"LEVEL"
        ~doc:
          "Structured-logger threshold: debug, info, warn (default), error \
           or quiet.  Overrides the $(b,TF_LOG) environment variable.")

(* Runs while cmdliner applies the term, i.e. before any command body. *)
let setup_logging = function
  | Some `Quiet -> Log.set_quiet ()
  | Some (`Level l) -> Log.set_level l
  | None -> ()

let setup_term = Term.(const setup_logging $ log_level_arg)

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace-event JSON trace of this run to FILE (open \
           it in ui.perfetto.dev).")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write a Prometheus text exposition of the run's counters and \
           histograms to FILE.")

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Export the collector to the requested files.  The trace JSON is parsed
   back as a self-check; a malformed artifact is a bug, reported as a
   degraded run. *)
let obs_export ~trace_out ~metrics_out snap =
  Option.iter
    (fun path ->
      Trace_export.to_file path snap;
      (match Json.validate (read_file path) with
      | Ok () -> ()
      | Error m ->
          Log.err "emitted trace failed JSON self-validation"
            ~fields:[ ("path", path); ("error", m) ];
          exit exit_degraded);
      Log.info "trace written"
        ~fields:
          [
            ("path", path);
            ("events", string_of_int (List.length snap.Obs.events));
          ])
    trace_out;
  Option.iter
    (fun path ->
      Prom.to_file path snap;
      Log.info "metrics written" ~fields:[ ("path", path) ])
    metrics_out

(* [with_obs ~trace_out ~metrics_out f] runs [f] with the collector on iff
   either output was requested, then exports.  Without outputs the
   collector stays off and [f] pays one branch per hook. *)
let with_obs ~trace_out ~metrics_out f =
  if trace_out = None && metrics_out = None then f ()
  else begin
    Obs.reset ();
    Obs.set_enabled true;
    (* these outputs exist for timeline inspection: record every
       occurrence, not the thinned per-(warp, site) default *)
    Obs.set_full_events true;
    let r =
      Fun.protect
        ~finally:(fun () ->
          Obs.set_enabled false;
          Obs.set_full_events false)
        f
    in
    obs_export ~trace_out ~metrics_out (Obs.snapshot ());
    r
  end

(* ------------------------------------------------------------------ *)
(* Commands                                                             *)

let list_cmd =
  let run () = E.Table1.run (E.Ctx.create ()) in
  Cmd.v (Cmd.info "list" ~doc:"Print the workload catalog (paper Table I).")
    Term.(const run $ const ())

let analyze_run () trace_out metrics_out w warp_size level threads scale
    exclude ignore_sync domains schedule per_function per_warp timeline blocks
    json =
  let options =
    {
      (options ~warp_size ~ignore_sync) with
      Analyzer.record_timeline = timeline;
      domains = resolve_domains domains;
      schedule;
    }
  in
  let r =
    with_obs ~trace_out ~metrics_out (fun () ->
        W.analyze ~options ~level ?threads ~scale ~exclude w)
  in
  let rep = r.Analyzer.report in
  if json then print_endline (Threadfuser_report.Report_json.to_string rep)
  else begin
  Fmt.pr "workload: %s (%s, %s)@." w.W.name w.W.suite w.W.description;
  Fmt.pr "%a@." Metrics.pp_summary rep;
  Fmt.pr
    "memory:   heap %.2f txn/instr | stack %.2f | global %.2f@."
    rep.Metrics.heap_mem.Metrics.txns_per_instr
    rep.Metrics.stack_mem.Metrics.txns_per_instr
    rep.Metrics.global_mem.Metrics.txns_per_instr;
  Fmt.pr "sync:     %d acquires, %d intra-warp conflicts, %d serialized instrs@."
    rep.Metrics.lock_acquires rep.Metrics.serializations
    rep.Metrics.serialized_instrs;
  if per_function then begin
    Fmt.pr "@.per-function breakdown:@.";
    Fmt.pr "%a" Metrics.pp_functions rep
  end;
  if per_warp then begin
    Fmt.pr "@.per-warp breakdown:@.";
    Fmt.pr "%a" Metrics.pp_warps rep
  end;
  if timeline then begin
    Fmt.pr "@.divergence timeline (active lanes over issue slots):@.";
    List.iter (fun tl -> Fmt.pr "  %a@." Threadfuser.Timeline.pp tl)
      r.Analyzer.timelines
  end;
  if blocks then begin
    Fmt.pr "@.hottest divergent basic blocks:@.";
    Fmt.pr "%a" Metrics.pp_blocks rep
  end
  end

let per_warp_flag =
  Arg.(
    value & flag
    & info [ "warps" ] ~doc:"Print the per-warp efficiency breakdown.")

let timeline_flag =
  Arg.(
    value & flag
    & info [ "timeline" ]
        ~doc:"Print each warp's occupancy sparkline over its issue slots.")

let blocks_flag =
  Arg.(
    value & flag
    & info [ "blocks" ]
        ~doc:"Print the most issue-expensive divergent basic blocks.")

let json_flag =
  Arg.(
    value & flag
    & info [ "json" ] ~doc:"Emit the full report as JSON instead of text.")

let scale =
  Arg.(
    value & opt int 1
    & info [ "scale" ] ~docv:"N" ~doc:"Synthetic input scale factor.")

let exclude =
  Arg.(
    value
    & opt (list string) []
    & info [ "exclude" ] ~docv:"FN,..."
        ~doc:
          "Exclude functions from tracing (their execution appears as            skipped instructions), like the paper's selective tracing.")

let analyze_cmd =
  let per_function =
    Arg.(
      value & flag
      & info [ "f"; "per-function" ] ~doc:"Print the per-function report.")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Trace a workload's MIMD execution and report its projected SIMT \
          efficiency, memory divergence and synchronization behaviour.")
    Term.(
      const analyze_run $ setup_term $ trace_out_arg $ metrics_out_arg
      $ workload_pos $ warp_size $ opt_level $ threads
      $ scale $ exclude $ ignore_sync $ domains_arg $ schedule_arg
      $ per_function $ per_warp_flag $ timeline_flag $ blocks_flag $ json_flag)

let sweep_run w threads =
  Fmt.pr "warp-width sweep for %s:@." w.W.name;
  List.iter
    (fun warp_size ->
      let r =
        W.analyze ~options:{ Analyzer.default_options with warp_size } ?threads w
      in
      Fmt.pr "  warp %2d: %5.1f%%@." warp_size
        (100. *. r.Analyzer.report.Metrics.simt_efficiency))
    [ 2; 4; 8; 16; 32 ]

let sweep_cmd =
  Cmd.v
    (Cmd.info "sweep" ~doc:"SIMT efficiency across warp widths (2..32).")
    Term.(const sweep_run $ workload_pos $ threads)

let trace_run w level threads output pack =
  let tr = W.trace_cpu ~level ?threads w in
  if pack then Pack.to_file output tr.W.traces
  else Serial.to_file output tr.W.traces;
  let stats =
    Array.fold_left
      (fun acc t ->
        acc + (Threadfuser_trace.Thread_trace.stats t).Threadfuser_trace.Thread_trace.traced_instrs)
      0 tr.W.traces
  in
  Fmt.pr "wrote %s (%s): %d threads, %d traced instructions@." output
    (if pack then "TFPACK1" else "TFTRACE1")
    (Array.length tr.W.traces) stats

let trace_cmd =
  let output =
    Arg.(
      value
      & opt string "trace.tftrace"
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Trace file to write.")
  in
  let pack_flag =
    Arg.(
      value & flag
      & info [ "pack" ]
          ~doc:
            "Write the compact columnar TFPACK1 container (delta-encoded, \
             per-block CRC-32) instead of flat TFTRACE1.  $(b,threadfuser \
             check) accepts both.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Capture a workload's per-thread dynamic traces to a file.")
    Term.(const trace_run $ workload_pos $ opt_level $ threads $ output
          $ pack_flag)

let gpu_preset_arg =
  let presets =
    [
      ("scaled", E.Fig6.gpu_config);
      ("rtx3070", Threadfuser_gpusim.Config.rtx3070);
      ("h100", Threadfuser_gpusim.Config.h100);
      ("tiny", Threadfuser_gpusim.Config.tiny);
    ]
  in
  Arg.(
    value
    & opt (enum presets) E.Fig6.gpu_config
    & info [ "gpu" ] ~docv:"PRESET"
        ~doc:"GPU configuration: scaled (default), rtx3070, h100 or tiny.")

let sim_epoch_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "epoch" ] ~docv:"CYCLES"
        ~doc:
          "Cycle-epoch barrier length for the domain-parallel simulator \
           merge.  Statistics are byte-identical at any value >= 1; only \
           the wall-clock changes.  Default 4096.")

let simulate_run () trace_out metrics_out w threads gpu_config domains epoch =
  let domains = resolve_domains domains in
  let epoch =
    match epoch with
    | Some e -> max 1 e
    | None -> Threadfuser_gpusim.Gpusim.default_epoch
  in
  let ctx = E.Ctx.create ?threads () in
  let tr = E.Ctx.traced ctx w in
  let cpu_t = E.Fig6.cpu_seconds ~domains tr in
  let stats =
    with_obs ~trace_out ~metrics_out (fun () ->
        let r =
          Threadfuser.Analyzer.analyze
            ~options:
              { Analyzer.default_options with gen_warp_trace = true; domains }
            tr.W.prog tr.W.traces
        in
        let wt = Option.get r.Analyzer.warp_trace in
        Threadfuser_gpusim.Gpusim.run ~config:gpu_config ~domains ~epoch wt)
  in
  let gpu_t = Threadfuser_gpusim.Gpusim.seconds ~config:gpu_config stats in
  Fmt.pr "workload: %s@." w.W.name;
  Fmt.pr "GPU: %a@." Threadfuser_gpusim.Gpusim.pp_stats stats;
  Fmt.pr "CPU baseline: %.3f ms | GPU projection: %.3f ms | speedup %.2fx@."
    (1000. *. cpu_t) (1000. *. gpu_t) (cpu_t /. gpu_t);
  Fmt.pr "bottleneck: %s@."
    (match Threadfuser_gpusim.Gpusim.bottleneck stats with
    | `Memory -> "memory system (coalescing / bandwidth)"
    | `Dependencies -> "instruction dependencies (ILP-bound)"
    | `Throughput -> "compute throughput (healthy occupancy)")

let simulate_cmd =
  Cmd.v
    (Cmd.info "simulate"
       ~doc:
         "Run the cycle-level SIMT simulator on the workload's warp traces \
          and project speedup over the multicore CPU model.")
    Term.(
      const simulate_run $ setup_term $ trace_out_arg $ metrics_out_arg
      $ workload_pos $ threads $ gpu_preset_arg $ domains_arg $ sim_epoch_arg)

(* profile: the whole pipeline under the collector, plus a human summary.
   Unlike --trace-out on other commands the collector is always on here,
   so the summary works even with no output files requested. *)
let profile_run () w warp_size level threads scale trace_out metrics_out
    domains =
  Obs.reset ();
  Obs.set_enabled true;
  Obs.set_full_events true;
  let result =
    Fun.protect
      ~finally:(fun () ->
        Obs.set_enabled false;
        Obs.set_full_events false)
      (fun () ->
        let tr =
          Obs.span "decode"
            ~args:[ ("workload", w.W.name) ]
            (fun () -> W.trace_cpu ~level ?threads ~scale w)
        in
        Analyzer.analyze
          ~options:
            {
              Analyzer.default_options with
              warp_size;
              domains = resolve_domains domains;
            }
          tr.W.prog tr.W.traces)
  in
  let snap = Obs.snapshot () in
  obs_export ~trace_out ~metrics_out snap;
  let rep = result.Analyzer.report in
  Fmt.pr "profile: %s (warp %d, %a, %d events)@." w.W.name warp_size
    Compiler.pp_level level
    (List.length snap.Obs.events);
  Fmt.pr "@.pipeline phases:@.";
  List.iter
    (function
      | Obs.Complete { name; track; dur; _ }
        when Obs.track_id track = Obs.track_id Obs.pipeline ->
          Fmt.pr "  %-16s %9.3f ms@." name (dur /. 1000.)
      | _ -> ())
    snap.Obs.events;
  Fmt.pr "@.counters:@.";
  List.iter
    (fun c ->
      let v = Obs.Counter.value c in
      if v <> 0 then Fmt.pr "  %-32s %d@." (Obs.counter_name c) v)
    snap.Obs.counters;
  let live = List.filter (fun h -> Obs.Histogram.count h > 0) snap.Obs.histograms in
  if live <> [] then begin
    Fmt.pr "@.histograms (p50 / p95 / p99):@.";
    List.iter
      (fun h ->
        Fmt.pr "  %-32s %.1f / %.1f / %.1f  (n=%d)@." (Obs.histogram_name h)
          (Obs.Histogram.quantile h 0.5)
          (Obs.Histogram.quantile h 0.95)
          (Obs.Histogram.quantile h 0.99)
          (Obs.Histogram.count h))
      live
  end;
  Fmt.pr "@.SIMT efficiency: %.1f%%@." (100. *. rep.Metrics.simt_efficiency)

let profile_cmd =
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run the full analysis pipeline on a workload with the \
          observability collector enabled and print a phase / counter / \
          histogram summary.  $(b,--trace-out) writes a Perfetto-loadable \
          Chrome trace; $(b,--metrics-out) writes Prometheus metrics.")
    Term.(
      const profile_run $ setup_term $ workload_pos $ warp_size $ opt_level
      $ threads $ scale $ trace_out_arg $ metrics_out_arg $ domains_arg)

let correlate_cmd =
  let run () = ignore (E.Fig5.run (E.Ctx.create ())) in
  Cmd.v
    (Cmd.info "correlate"
       ~doc:
         "Reproduce the paper's correlation study (Fig. 5) across compiler \
          optimization levels.")
    Term.(const run $ const ())

let cfg_run w level threads function_name =
  let tr = W.trace_cpu ~level ?threads w in
  let dcfgs = Threadfuser_cfg.Dcfg.of_traces tr.W.prog tr.W.traces in
  let fid =
    match function_name with
    | Some name -> Threadfuser_prog.Program.find_func tr.W.prog name
    | None -> Threadfuser_prog.Program.find_func tr.W.prog w.W.cpu.W.worker
  in
  let ipdom = Threadfuser_cfg.Ipdom.compute dcfgs.(fid) in
  print_string
    (Threadfuser_cfg.Dot.to_string tr.W.prog dcfgs.(fid) (Some ipdom))

let cfg_cmd =
  let function_name =
    Arg.(
      value
      & opt (some string) None
      & info [ "f"; "function" ] ~docv:"NAME"
          ~doc:"Function to export (default: the worker).")
  in
  Cmd.v
    (Cmd.info "cfg"
       ~doc:
         "Emit a workload function's dynamic CFG (with IPDOM reconvergence           edges) as Graphviz DOT on stdout.")
    Term.(const cfg_run $ workload_pos $ opt_level $ threads $ function_name)

let tracefile_run path =
  let traces = Serial.of_file path in
  Fmt.pr "%s: %d threads@." path (Array.length traces);
  let module TT = Threadfuser_trace.Thread_trace in
  let total = ref 0 in
  Array.iter
    (fun (t : TT.t) ->
      let s = TT.stats t in
      total := !total + s.TT.traced_instrs;
      Fmt.pr
        "  tid %3d: %6d instrs, %5d blocks, %5d loads, %5d stores, %4d lock          ops, %6d skipped (io %d / spin %d)@."
        t.TT.tid s.TT.traced_instrs s.TT.blocks s.TT.loads s.TT.stores
        s.TT.lock_ops
        (s.TT.skipped_io + s.TT.skipped_spin)
        s.TT.skipped_io s.TT.skipped_spin)
    traces;
  Fmt.pr "total traced instructions: %d@." !total

let tracefile_cmd =
  let path =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Trace file written by $(b,threadfuser trace).")
  in
  Cmd.v
    (Cmd.info "tracefile" ~doc:"Inspect a serialized trace file.")
    Term.(const tracefile_run $ path)

let disasm_run w level output =
  let prog = W.link ~alloc:w.W.alloc w.W.cpu level in
  let text =
    Threadfuser_prog.Asm_text.to_string
      (Threadfuser_prog.Asm_text.disassemble prog)
  in
  match output with
  | None -> print_string text
  | Some path ->
      let oc = open_out path in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc text);
      Fmt.pr "wrote %s (%d functions, %d instructions)@." path
        (Threadfuser_prog.Program.func_count prog)
        (Threadfuser_prog.Program.total_instr_count prog)

let disasm_cmd =
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write to a file instead of stdout.")
  in
  Cmd.v
    (Cmd.info "disasm"
       ~doc:
         "Disassemble a workload (with its runtime library linked in) to           .tfasm text.")
    Term.(const disasm_run $ workload_pos $ opt_level $ output)

let asm_run path =
  let surface = Threadfuser_prog.Asm_text.of_file path in
  match Threadfuser_prog.Program.assemble surface with
  | prog ->
      Fmt.pr "%s assembles cleanly: %d functions, %d basic blocks, %d               instructions@."
        path
        (Threadfuser_prog.Program.func_count prog)
        (Array.fold_left
           (fun acc f -> acc + Threadfuser_prog.Program.block_count f)
           0 prog.Threadfuser_prog.Program.funcs)
        (Threadfuser_prog.Program.total_instr_count prog)
  | exception Threadfuser_prog.Program.Assembly_error m ->
      Fmt.epr "assembly error: %s@." m;
      exit 1

let asm_cmd =
  let path =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:".tfasm source file.")
  in
  Cmd.v
    (Cmd.info "asm" ~doc:"Parse and validate a .tfasm source file.")
    Term.(const asm_run $ path)

let warptrace_run w warp_size threads output =
  let options =
    { Analyzer.default_options with warp_size; gen_warp_trace = true }
  in
  let r = W.analyze ~options ?threads w in
  let wt = Option.get r.Analyzer.warp_trace in
  Threadfuser.Warp_serial.to_file output wt;
  Fmt.pr "wrote %s: %d warps, %d micro-ops@." output
    (Array.length wt.Threadfuser.Warp_trace.warps)
    (Threadfuser.Warp_trace.total_ops wt)

let warptrace_cmd =
  let output =
    Arg.(
      value
      & opt string "kernel.tfwarp"
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Warp-trace file to write.")
  in
  Cmd.v
    (Cmd.info "warptrace"
       ~doc:
         "Generate the warp-level RISC trace (the simulator integration           format) and write it to a file.")
    Term.(const warptrace_run $ workload_pos $ warp_size $ threads $ output)

let replay_run path domains =
  let wt = Threadfuser.Warp_serial.of_file path in
  Fmt.pr "%s: %d warps (width %d), %d micro-ops@." path
    (Array.length wt.Threadfuser.Warp_trace.warps)
    wt.Threadfuser.Warp_trace.warp_size
    (Threadfuser.Warp_trace.total_ops wt);
  let stats =
    Threadfuser_gpusim.Gpusim.run ~config:E.Fig6.gpu_config
      ~domains:(resolve_domains domains) wt
  in
  Fmt.pr "GPU (scaled 8-SM part): %a@." Threadfuser_gpusim.Gpusim.pp_stats stats

let replay_cmd =
  let path =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:"Warp-trace file written by $(b,threadfuser warptrace).")
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Run the cycle-level simulator on a saved warp-trace file.")
    Term.(const replay_run $ path $ domains_arg)

(* ------------------------------------------------------------------ *)
(* Robustness commands: trace validation and fault injection            *)

let pp_diag ppf d = Fmt.pf ppf "  %s" (Tf_error.to_string d)

(* Format sniffing: both trace containers are accepted, keyed on their
   magic.  Either decoder raises [Serial.Corrupt] on damage — TFPACK1
   additionally from a per-block CRC-32 mismatch — which the top-level
   handler maps to exit 2, the same typed treatment as .tfwarp files. *)
let load_traces path =
  let data = read_file path in
  let has_prefix p =
    String.length data >= String.length p
    && String.sub data 0 (String.length p) = p
  in
  if has_prefix Pack.magic then Pack.decode data else Serial.of_string data

let check_run () path workload level =
  let traces = load_traces path in
  match workload with
  | None ->
      (* no program at hand: structural checks only *)
      let diags = Validate.all traces in
      List.iter (fun d -> Fmt.pr "%a@." pp_diag d) diags;
      let errors =
        List.filter (fun d -> d.Tf_error.severity = Tf_error.Error) diags
      in
      if errors <> [] then begin
        Log.err "trace validation failed"
          ~fields:
            [
              ("path", path);
              ("errors", string_of_int (List.length errors));
              ("threads", string_of_int (Array.length traces));
            ];
        exit exit_degraded
      end
      else
        Fmt.pr "%s: OK — %d threads, %d warning(s)@." path
          (Array.length traces) (List.length diags)
  | Some w ->
      (* full checked pipeline against the workload's program *)
      let prog = W.link ~alloc:w.W.alloc w.W.cpu level in
      let checked = Analyzer.analyze_checked prog traces in
      List.iter (fun d -> Fmt.pr "%a@." pp_diag d) checked.Analyzer.diagnostics;
      let rep = checked.Analyzer.result.Analyzer.report in
      Fmt.pr "%a@." Metrics.pp_summary rep;
      if Metrics.degraded rep then begin
        Log.err "analysis degraded"
          ~fields:
            [
              ("path", path);
              ( "quarantined",
                string_of_int (List.length checked.Analyzer.quarantined) );
            ];
        exit exit_degraded
      end

let check_cmd =
  let path =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:
            "Trace file written by $(b,threadfuser trace) — flat TFTRACE1 \
             or compact TFPACK1 ($(b,--pack)), sniffed by magic.")
  in
  let workload =
    Arg.(
      value
      & pos 1 (some workload_arg) None
      & info [] ~docv:"WORKLOAD"
          ~doc:
            "Validate against this workload's program (range checks +             checked replay).  Omit for structural checks only.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Validate a serialized trace file (TFTRACE1 or TFPACK1): decode — \
          including magic/version and per-block CRC-32 checks for packed \
          traces — run the diagnostic passes, and (given a workload) the \
          quarantining checked analysis.  Exits 2 on corrupt input, 3 on \
          validation/replay errors.")
    Term.(const check_run $ setup_term $ path $ workload $ opt_level)

(* fuzzing corrupts traces on purpose, so replay-abort warnings are the
   expected outcome, not news: default the threshold to [error] here
   (an explicit --log-level still wins) *)
let fuzz_run log_level workload runs seed0 threads level verbose =
  (match log_level with
  | None -> Log.set_level Log.Error
  | some -> setup_logging some);
  let targets =
    match workload with Some w -> [ w ] | None -> Registry.all
  in
  let any_uncaught = ref false in
  List.iter
    (fun (w : W.t) ->
      let tr = W.trace_cpu ~level ?threads w in
      let bytes = Serial.to_string tr.W.traces in
      let on_outcome =
        if verbose then
          Some
            (fun ~seed o ->
              Fmt.pr "  seed %6d: %s@." seed (Fuzz.outcome_name o))
        else None
      in
      let t = Fuzz.run ~seed0 ~runs ?on_outcome ~prog:tr.W.prog ~bytes () in
      Fmt.pr "%-18s %a@." w.W.name Fuzz.pp_totals t;
      List.iter
        (fun (seed, m) ->
          Log.err "uncaught exception under fuzzing"
            ~fields:
              [ ("workload", w.W.name); ("seed", string_of_int seed); ("msg", m) ])
        t.Fuzz.uncaught;
      if t.Fuzz.uncaught <> [] then any_uncaught := true)
    targets;
  if !any_uncaught then begin
    Log.err "uncaught exceptions escaped the checked pipeline (BUG)";
    exit 4
  end

let fuzz_cmd =
  let workload =
    Arg.(
      value
      & pos 0 (some workload_arg) None
      & info [] ~docv:"WORKLOAD"
          ~doc:"Workload to fuzz (omit to sweep every registered workload).")
  in
  let runs =
    Arg.(
      value & opt int 1000
      & info [ "n"; "runs" ] ~docv:"N"
          ~doc:"Seeded corruptions to run per workload.")
  in
  let seed0 =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"First seed; run $(i,i) uses seed SEED+$(i,i).")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print every outcome.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Corrupt a workload's captured trace N times with the seeded fault \
          injector (byte flips, truncations, dropped/duplicated events, \
          unbalanced locks and barriers) and drive each through the checked \
          analysis pipeline.  Every run must end in a clean report, a typed \
          diagnostic, or a partial report whose coverage fields account for \
          the quarantined threads; exits 4 if any exception escapes.")
    Term.(
      const fuzz_run $ log_level_arg $ workload $ runs $ seed0 $ threads
      $ opt_level $ verbose)

(* ------------------------------------------------------------------ *)
(* Blame: site-level bottleneck attribution + replay flamegraph         *)

let blame_run () trace_out metrics_out w warp_size level threads scale exclude
    ignore_sync top flame_out flame_weight json =
  let options = options ~warp_size ~ignore_sync in
  let r =
    with_obs ~trace_out ~metrics_out (fun () ->
        W.analyze ~options ~level ?threads ~scale ~exclude w)
  in
  let rep = r.Analyzer.report in
  let take n l = List.filteri (fun i _ -> i < n) l in
  let rep =
    {
      rep with
      Metrics.divergence_sites = take top rep.Metrics.divergence_sites;
      mem_sites = take top rep.Metrics.mem_sites;
    }
  in
  Option.iter
    (fun path ->
      let folded = Flamegraph.folded ~weight:flame_weight r.Analyzer.flame in
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc folded);
      Log.info "flamegraph written"
        ~fields:
          [
            ("path", path);
            ("weight", Flamegraph.weight_name flame_weight);
            ("stacks", string_of_int (List.length r.Analyzer.flame));
          ])
    flame_out;
  if json then print_endline (Threadfuser_report.Report_json.to_string rep)
  else begin
    Fmt.pr "workload: %s (%s, %s)@." w.W.name w.W.suite w.W.description;
    Fmt.pr "%a@.@." Metrics.pp_summary rep;
    Fmt.pr "%a" Metrics.pp_blame rep;
    Option.iter
      (fun path ->
        Fmt.pr "@.flamegraph: wrote %s (%s-weighted folded stacks)@." path
          (Flamegraph.weight_name flame_weight))
      flame_out
  end

let blame_cmd =
  let top =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"N" ~doc:"Sites to show per ranking.")
  in
  let flame_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "flamegraph" ] ~docv:"FILE"
          ~doc:
            "Write the replay flamegraph as folded stacks to FILE (feed to \
             flamegraph.pl or speedscope).")
  in
  let flame_weight =
    Arg.(
      value
      & opt
          (enum [ ("issues", Flamegraph.Issues); ("lost", Flamegraph.Lost) ])
          Flamegraph.Issues
      & info [ "flame-weight" ] ~docv:"WEIGHT"
          ~doc:
            "Flamegraph weighting: $(b,issues) (warp lock-step issues) or \
             $(b,lost) (inactive-lane issue slots).")
  in
  Cmd.v
    (Cmd.info "blame"
       ~doc:
         "Rank the branch sites that cost the most SIMT efficiency (splits \
          and downstream lost-lane issue slots) and the access sites that \
          generate the most excess memory transactions — the paper's Fig. 7 \
          diagnosis workflow, automated.  $(b,--flamegraph) additionally \
          exports the replay as folded stacks.")
    Term.(
      const blame_run $ setup_term $ trace_out_arg $ metrics_out_arg
      $ workload_pos $ warp_size $ opt_level $ threads $ scale $ exclude
      $ ignore_sync $ top $ flame_out $ flame_weight $ json_flag)

(* ------------------------------------------------------------------ *)
(* Diff: compare two JSON reports, gate on regressions                  *)

let diff_run () before_path after_path tolerance =
  let parse path =
    match Json.parse (read_file path) with
    | Ok j -> j
    | Error m ->
        Log.err "not a JSON report" ~fields:[ ("path", path); ("error", m) ];
        exit exit_corrupt
  in
  let before = parse before_path in
  let after = parse after_path in
  match Report_diff.compare_reports ~tolerance before after with
  | Error m ->
      Log.err "report shape mismatch" ~fields:[ ("error", m) ];
      exit exit_corrupt
  | Ok d ->
      Fmt.pr "%a" Report_diff.pp d;
      if Report_diff.has_regression d then exit exit_regression

let diff_cmd =
  let report_pos n name =
    Arg.(
      required
      & pos n (some file) None
      & info [] ~docv:name
          ~doc:"JSON report written by $(b,threadfuser analyze --json).")
  in
  let tolerance =
    Arg.(
      value & opt float 0.01
      & info [ "tolerance" ] ~docv:"FRAC"
          ~doc:
            "Relative slack per metric before a worsening counts as a \
             regression (0.01 = 1%).")
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Compare two analyzer JSON reports — whole-program metrics, \
          per-function efficiency, and blame sites — and exit 5 if any \
          metric regressed beyond the tolerance (2 if either file is not a \
          report).")
    Term.(
      const diff_run $ setup_term $ report_pos 0 "BASELINE"
      $ report_pos 1 "NEW" $ tolerance)

(* ------------------------------------------------------------------ *)
(* Suite: supervised batch execution with checkpoint/resume             *)

let suite_run () trace_out metrics_out workloads jobs isolation deadline
    retries backoff dir resume warps levels threads scale seed inject_crash
    inject_stall stall_s every_attempt use_cache cache_dir domains =
  let workloads =
    match workloads with
    | [] -> List.map (fun w -> w.W.name) Registry.all
    | ws -> ws
  in
  let chaos =
    if inject_crash = 0 && inject_stall = 0 then None
    else
      Some
        (Runner.Exec_fault.plan ~seed ~crash_pct:inject_crash
           ~stall_pct:inject_stall ~stall_s
           ~first_attempt_only:(not every_attempt) ())
  in
  let cache =
    if use_cache || cache_dir <> None then
      Some (Cache.open_ (Option.value cache_dir ~default:".tfcache"))
    else None
  in
  let config =
    {
      Runner.parallelism = jobs;
      isolation;
      deadline_s = deadline;
      retries;
      backoff_s = backoff;
      seed;
      dir;
      resume;
      chaos;
      cache;
      domains = (match domains with Some d -> max 1 d | None -> 1);
    }
  in
  let batch =
    Runner.matrix ~workloads ~warp_sizes:warps ~levels ?threads ~scale ()
  in
  (* graceful shutdown: first signal drains (journal stays fsync'd and
     --resume picks up the unfinished jobs); a second one kills for real *)
  let signalled = ref false in
  let on_signal _ =
    if !signalled then exit 130;
    signalled := true;
    Runner.request_stop ()
  in
  ignore (Sys.signal Sys.sigint (Sys.Signal_handle on_signal));
  ignore (Sys.signal Sys.sigterm (Sys.Signal_handle on_signal));
  let m =
    Fun.protect
      ~finally:(fun () -> Option.iter Cache.close cache)
      (fun () ->
        with_obs ~trace_out ~metrics_out (fun () -> Runner.run ~config batch))
  in
  Fmt.pr "%a" Runner.pp_manifest m;
  if cache <> None then
    Fmt.pr "cache: %d hit(s), %d miss(es)@." m.Runner.cache_hits
      m.Runner.cache_misses;
  Fmt.pr "manifest: %s@." (Runner.manifest_path dir);
  if not (Runner.all_ok m) then exit exit_degraded

let suite_cmd =
  let workloads_pos =
    Arg.(
      value
      & pos_all workload_name_arg []
      & info [] ~docv:"WORKLOAD"
          ~doc:
            "Workloads to analyze (default: the whole registry).  Each \
             becomes one job per warp-size x opt-level combination.")
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Jobs to run in parallel.")
  in
  let isolation_conv =
    let parse = function
      | "fork" -> Ok Runner.Fork
      | "domains" -> Ok Runner.Domains
      | _ -> Error (`Msg "isolation must be fork or domains")
    in
    Arg.conv (parse, fun ppf i -> Fmt.string ppf (Runner.isolation_name i))
  in
  let isolation_arg =
    Arg.(
      value
      & opt isolation_conv Runner.Fork
      & info [ "isolation" ] ~docv:"MODE"
          ~doc:
            "$(b,fork): each attempt in a forked child — crashes cannot \
             touch the supervisor and deadlines SIGKILL for real.  \
             $(b,domains): in-process OCaml domain pool — cheaper, but \
             isolation is exception-deep and deadlines are cooperative.")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:"Per-attempt wall-clock budget; over it the job times out.")
  in
  let retries_arg =
    Arg.(
      value & opt int 1
      & info [ "retries" ] ~docv:"N"
          ~doc:"Extra attempts after a failed first one.")
  in
  let backoff_arg =
    Arg.(
      value & opt float 0.25
      & info [ "backoff" ] ~docv:"SECONDS"
          ~doc:
            "Base delay before the first retry; doubles per attempt with \
             seeded jitter, capped at 30 s.")
  in
  let dir_arg =
    Arg.(
      value
      & opt string ".tfsuite"
      & info [ "dir" ] ~docv:"DIR"
          ~doc:
            "Suite directory: checkpoint journal, report artifacts and \
             manifest.json.")
  in
  let resume_flag =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Replay the checkpoint journal in $(b,--dir) and re-run only \
             jobs without a valid completed record.")
  in
  let warps_arg =
    Arg.(
      value
      & opt (list int) [ 32 ]
      & info [ "w"; "warp-size" ] ~docv:"N,..."
          ~doc:"Warp widths to cross into the job matrix.")
  in
  let levels_arg =
    Arg.(
      value
      & opt (list level_arg) [ Compiler.O1 ]
      & info [ "O"; "opt-level" ] ~docv:"LEVEL,..."
          ~doc:"Optimization levels to cross into the job matrix.")
  in
  let seed_arg =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"N"
          ~doc:"Root seed for backoff jitter and fault injection.")
  in
  let inject_crash_arg =
    Arg.(
      value & opt int 0
      & info [ "inject-crash" ] ~docv:"PCT"
          ~doc:
            "Chaos: crash each eligible attempt with this probability \
             (deterministic per seed/job/attempt).")
  in
  let inject_stall_arg =
    Arg.(
      value & opt int 0
      & info [ "inject-stall" ] ~docv:"PCT"
          ~doc:"Chaos: stall eligible attempts with this probability.")
  in
  let stall_s_arg =
    Arg.(
      value & opt float 30.
      & info [ "stall-s" ] ~docv:"SECONDS"
          ~doc:"How long an injected stall sleeps.")
  in
  let every_attempt_flag =
    Arg.(
      value & flag
      & info [ "inject-every-attempt" ]
          ~doc:
            "Make retries as fault-prone as first attempts (default: \
             faults fire on attempt 1 only, so retries recover).")
  in
  let cache_flag =
    Arg.(
      value & flag
      & info [ "cache" ]
          ~doc:
            "Serve jobs from the content-addressed artifact cache when the \
             key (workload, opt level, warp size, analyzer version) hits; \
             write clean fresh results through.  Composes with \
             $(b,--resume).  Default root $(b,.tfcache); override with \
             $(b,--cache-dir).")
  in
  let cache_dir_opt =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:"Artifact-cache root (implies $(b,--cache)).")
  in
  (* suite already uses -j for job-level parallelism, so the replay-domain
     knob is long-form only here *)
  let suite_domains_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Replay worker domains inside each job's analysis (the \
             analyzer's $(b,-j)); byte-identical reports at any value.  \
             Orthogonal to $(b,--jobs).")
  in
  Cmd.v
    (Cmd.info "suite"
       ~doc:
         "Analyze a batch of workloads under a supervisor: parallel \
          crash-isolated jobs, per-job deadlines, seeded retry/backoff, \
          and an fsync'd checkpoint journal so $(b,--resume) skips \
          completed work.  Always writes a manifest accounting for every \
          job; exits 3 unless every job completed clean.")
    Term.(
      const suite_run $ setup_term $ trace_out_arg $ metrics_out_arg
      $ workloads_pos $ jobs_arg $ isolation_arg $ deadline_arg $ retries_arg
      $ backoff_arg $ dir_arg $ resume_flag $ warps_arg $ levels_arg $ threads
      $ scale $ seed_arg $ inject_crash_arg $ inject_stall_arg $ stall_s_arg
      $ every_attempt_flag $ cache_flag $ cache_dir_opt $ suite_domains_arg)

(* ------------------------------------------------------------------ *)
(* Cache: artifact-store maintenance                                    *)

let cache_root_arg =
  Arg.(
    value
    & opt string ".tfcache"
    & info [ "dir" ] ~docv:"DIR" ~doc:"Artifact-cache root directory.")

let with_cache dir f =
  let c = Cache.open_ dir in
  Fun.protect ~finally:(fun () -> Cache.close c) (fun () -> f c)

let pp_cache_check dir what (r : Cache.check) =
  Fmt.pr
    "cache %s %s: %d checked — %d ok, %d corrupt, %d missing, %d orphaned@."
    dir what r.Cache.checked r.Cache.ok r.Cache.corrupt r.Cache.missing
    r.Cache.orphaned

let cache_stat_run () trace_out metrics_out dir =
  with_obs ~trace_out ~metrics_out (fun () ->
      with_cache dir (fun c ->
          let s = Cache.stat c in
          Fmt.pr
            "cache %s: %d live entrie(s), %d byte(s), %d quarantined, %d tmp \
             file(s)@."
            dir s.Cache.entries_live s.Cache.bytes_live s.Cache.quarantined
            s.Cache.tmp_files))

let cache_verify_run () trace_out metrics_out dir =
  let r =
    with_obs ~trace_out ~metrics_out (fun () -> with_cache dir Cache.verify)
  in
  pp_cache_check dir "verify" r;
  if r.Cache.corrupt > 0 || r.Cache.missing > 0 then exit exit_degraded

let cache_scrub_run () trace_out metrics_out dir =
  (* scrub repairs: quarantining damage is its job, so it exits 0 unless
     the store itself is unusable *)
  let r =
    with_obs ~trace_out ~metrics_out (fun () -> with_cache dir Cache.scrub)
  in
  pp_cache_check dir "scrub" r

let cache_gc_run () trace_out metrics_out dir budget =
  let evicted =
    with_obs ~trace_out ~metrics_out (fun () ->
        with_cache dir (fun c -> Cache.gc c ~budget_bytes:budget))
  in
  Fmt.pr "cache %s gc: %d entrie(s) evicted to fit %d byte(s)@." dir evicted
    budget

let cache_cmd =
  let budget_arg =
    Arg.(
      required
      & opt (some int) None
      & info [ "budget" ] ~docv:"BYTES"
          ~doc:"Live-set size budget; least-recently-used entries beyond \
                it are evicted.")
  in
  Cmd.group
    (Cmd.info "cache"
       ~doc:
         "Maintain the content-addressed artifact cache used by \
          $(b,threadfuser suite --cache): inspect it, re-verify every \
          entry, repair it after a crash, and enforce a size budget.")
    [
      Cmd.v
        (Cmd.info "stat"
           ~doc:"Print live entry count, byte total, quarantine and tmp \
                 counts.")
        Term.(
          const cache_stat_run $ setup_term $ trace_out_arg $ metrics_out_arg
          $ cache_root_arg);
      Cmd.v
        (Cmd.info "verify"
           ~doc:
             "Re-verify every blob (magic, CRC-32, structure, report \
              validator) and cross-check the index, read-only.  Exits 3 if \
              anything is corrupt or missing.")
        Term.(
          const cache_verify_run $ setup_term $ trace_out_arg
          $ metrics_out_arg $ cache_root_arg);
      Cmd.v
        (Cmd.info "scrub"
           ~doc:
             "Repair the store: quarantine damaged blobs, adopt valid \
              orphans, sweep commit leftovers, and atomically rebuild the \
              index from the survivors.  Exits 0 — quarantining damage is \
              the repair, not a failure.")
        Term.(
          const cache_scrub_run $ setup_term $ trace_out_arg $ metrics_out_arg
          $ cache_root_arg);
      Cmd.v
        (Cmd.info "gc"
           ~doc:
             "Evict least-recently-used entries until the live set fits \
              $(b,--budget) bytes (recency = journal order, \
              deterministic).")
        Term.(
          const cache_gc_run $ setup_term $ trace_out_arg $ metrics_out_arg
          $ cache_root_arg $ budget_arg);
    ]

(* ------------------------------------------------------------------ *)
(* Serve: the streaming analysis daemon and its client                  *)

let socket_arg =
  Arg.(
    value
    & opt string "threadfuser.sock"
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket the daemon listens on.")

let serve_run () trace_out metrics_out w level warp_size ignore_sync domains
    schedule max_sessions quota deadline workers seed backoff inject_disc
    inject_stall inject_oversize stall_s disc_after socket admin_socket
    flight_dir cache_dir =
  let prog = W.link ~alloc:w.W.alloc w.W.cpu level in
  let options =
    {
      (options ~warp_size ~ignore_sync) with
      Analyzer.domains = resolve_domains domains;
      schedule;
    }
  in
  let fault =
    if inject_disc = 0 && inject_stall = 0 && inject_oversize = 0 then None
    else
      Some
        (Runner.Exec_fault.session_plan ~seed ~disconnect_pct:inject_disc
           ~stall_writer_pct:inject_stall ~oversize_pct:inject_oversize
           ~writer_stall_s:stall_s ~disconnect_after:disc_after ())
  in
  let cache = Option.map Cache.open_ cache_dir in
  let cfg =
    {
      (Serve.default_config ~prog ~socket_path:socket) with
      Serve.options;
      max_sessions;
      session_quota = quota;
      deadline_s = deadline;
      workers = max 1 workers;
      seed;
      backoff_base_s = backoff;
      fault;
      admin_path =
        (match admin_socket with
        | Some p -> Some p
        | None -> Some (Serve.admin_path_of socket));
      flight_dir;
      cache;
    }
  in
  let stop = Atomic.make false in
  let request_stop _ = Atomic.set stop true in
  ignore (Sys.signal Sys.sigterm (Sys.Signal_handle request_stop));
  ignore (Sys.signal Sys.sigint (Sys.Signal_handle request_stop));
  ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
  let stats =
    Fun.protect
      ~finally:(fun () -> Option.iter Cache.close cache)
      (fun () -> with_obs ~trace_out ~metrics_out (fun () -> Serve.run ~stop cfg))
  in
  Fmt.pr "served %d session(s), %d failed, %d shed, %d byte(s) ingested@."
    stats.Serve.served stats.Serve.failed stats.Serve.shed
    stats.Serve.bytes_ingested

let serve_cmd =
  let max_sessions_arg =
    Arg.(
      value & opt int 8
      & info [ "max-sessions" ] ~docv:"N"
          ~doc:
            "Concurrent sessions before new connections are shed with a \
             typed $(b,busy) reply.")
  in
  let quota_arg =
    Arg.(
      value
      & opt int Threadfuser.Analyzer.Session.default_budget
      & info [ "session-quota" ] ~docv:"BYTES"
          ~doc:
            "Per-session memory budget; ingested frames beyond it spool to \
             disk, and a frame bigger than the whole budget is rejected as \
             corrupt.")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:
            "Per-session wall-clock budget; over it the session gets a \
             typed $(b,timeout) reply covering the prefix it sent.")
  in
  let workers_arg =
    Arg.(
      value & opt int 1
      & info [ "workers" ] ~docv:"N"
          ~doc:"Analysis worker domains servicing the session pool.")
  in
  let seed_arg =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"N"
          ~doc:"Root seed for backoff jitter and fault injection.")
  in
  let backoff_arg =
    Arg.(
      value & opt float 0.05
      & info [ "backoff" ] ~docv:"SECONDS"
          ~doc:
            "Base listener back-off after a transient accept failure; \
             doubles per attempt with seeded jitter.")
  in
  let inject_disconnect_arg =
    Arg.(
      value & opt int 0
      & info [ "inject-disconnect" ] ~docv:"PCT"
          ~doc:
            "Chaos: cut this percentage of sessions mid-stream \
             (deterministic per seed and accept ordinal).")
  in
  let inject_stall_writer_arg =
    Arg.(
      value & opt int 0
      & info [ "inject-stall-writer" ] ~docv:"PCT"
          ~doc:"Chaos: stop reading this percentage of sessions' sockets.")
  in
  let inject_oversize_arg =
    Arg.(
      value & opt int 0
      & info [ "inject-oversize" ] ~docv:"PCT"
          ~doc:
            "Chaos: prepend an oversized frame header to this percentage \
             of sessions.")
  in
  let stall_s_arg =
    Arg.(
      value & opt float 30.
      & info [ "stall-s" ] ~docv:"SECONDS"
          ~doc:"How long an injected writer stall lasts.")
  in
  let disconnect_after_arg =
    Arg.(
      value & opt int 4096
      & info [ "disconnect-after" ] ~docv:"BYTES"
          ~doc:"Upper bound on bytes read before an injected disconnect.")
  in
  let admin_socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "admin-socket" ] ~docv:"PATH"
          ~doc:
            "Where the STATS admin socket listens (default: \
             $(b,<socket>.stats)).  $(b,threadfuser stat) and $(b,top) \
             scrape it.")
  in
  let flight_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "flight-dir" ] ~docv:"DIR"
          ~doc:
            "Enable the per-session flight recorder and dump \
             $(b,session-<id>.trace.json) (Perfetto-loadable) plus a \
             metrics snapshot there whenever a session ends in an error \
             or timeout reply.")
  in
  let serve_cache_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:
            "Serve clean report frames from (and write them through to) \
             the artifact cache at $(docv), keyed by the stream's content \
             digest.  Cache failures degrade to uncached replies.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the streaming analysis daemon on a Unix-domain socket.  \
          Each connection streams one trace (any chunking) and gets back \
          a typed status plus a report byte-identical to batch \
          $(b,threadfuser analyze --json).  Sessions are supervised: \
          bounded memory per session, backpressure on slow consumers, \
          $(b,busy) shedding at capacity, per-session deadlines, and \
          crash isolation.  SIGTERM/SIGINT drain live sessions and exit \
          cleanly.")
    Term.(
      const serve_run $ setup_term $ trace_out_arg $ metrics_out_arg
      $ workload_pos $ opt_level $ warp_size $ ignore_sync $ domains_arg
      $ schedule_arg $ max_sessions_arg $ quota_arg $ deadline_arg
      $ workers_arg $ seed_arg $ backoff_arg $ inject_disconnect_arg
      $ inject_stall_writer_arg $ inject_oversize_arg $ stall_s_arg
      $ disconnect_after_arg $ socket_arg $ admin_socket_arg $ flight_dir_arg
      $ serve_cache_dir_arg)

let client_run () path socket chunk_bytes =
  let traces = Serial.of_file path in
  let outcome =
    Sclient.session ~chunk_bytes ~socket_path:socket (Stream.encode traces)
  in
  let r = outcome.Sclient.reply in
  Log.info "serve reply"
    ~fields:
      ([
         ("status", Sprotocol.status_name r.Sprotocol.status);
         ("threads", string_of_int r.Sprotocol.threads);
         ("quarantined", string_of_int r.Sprotocol.quarantined);
       ]
      @ (match r.Sprotocol.kind with Some k -> [ ("kind", k) ] | None -> [])
      @
      match r.Sprotocol.message with
      | Some m -> [ ("message", m) ]
      | None -> []);
  List.iter (fun d -> Fmt.epr "  %s@." d) r.Sprotocol.diagnostics;
  (* frame bytes verbatim + the same trailing newline [analyze --json]
     emits, so the outputs compare byte-for-byte *)
  Option.iter print_endline outcome.Sclient.report;
  match r.Sprotocol.status with
  | Sprotocol.Ok_report -> ()
  | Sprotocol.Degraded -> exit exit_degraded
  | Sprotocol.Busy -> exit exit_busy
  | Sprotocol.Error_reply | Sprotocol.Timeout -> exit exit_corrupt
  | Sprotocol.Ready ->
      Log.err "daemon never answered the stream";
      exit exit_corrupt

let client_cmd =
  let path =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Trace file written by $(b,threadfuser trace).")
  in
  let chunk_arg =
    Arg.(
      value & opt int 65536
      & info [ "chunk-bytes" ] ~docv:"BYTES"
          ~doc:
            "Stream the trace in slices of this size (1 exercises \
             byte-at-a-time ingestion).")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Stream a trace file to a running $(b,threadfuser serve) daemon \
          and print the returned report JSON on stdout.  Exit 0 on a \
          clean report, 3 degraded, 6 busy, 2 on error or timeout.")
    Term.(const client_run $ setup_term $ path $ socket_arg $ chunk_arg)

(* ------------------------------------------------------------------ *)
(* Stat / top: scrape a running daemon's admin socket                   *)

let scrape ~format socket =
  let admin = Serve.admin_path_of socket in
  try Ok (Sclient.stats ~format ~socket_path:socket ())
  with
  | Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "%s: %s" admin (Unix.error_message e))
  | End_of_file -> Error (Printf.sprintf "%s: daemon closed mid-reply" admin)

let jint k j =
  Option.value ~default:0 (Option.bind (Json.member k j) Json.to_int_opt)

let jfloat k j =
  Option.value ~default:0.0 (Option.bind (Json.member k j) Json.to_float_opt)

let jstr k j =
  Option.value ~default:"" (Option.bind (Json.member k j) Json.to_string_opt)

let jbool k j =
  match Json.member k j with Some (Json.Bool b) -> b | _ -> false

let parse_stats body =
  match Json.parse body with
  | Ok j -> j
  | Error m ->
      Log.err "unparseable stats document: %s" m;
      exit exit_corrupt

let stat_print_human j =
  let d = Option.value ~default:(Json.Obj []) (Json.member "daemon" j) in
  let l = Option.value ~default:(Json.Obj []) (Json.member "latency_us" j) in
  Fmt.pr
    "daemon: up %.1fs — %d/%d session(s) active, %d worker(s), queue %d@."
    (jfloat "uptime_s" j) (jint "active" d) (jint "max_sessions" d)
    (jint "workers" d) (jint "worker_queue_depth" d);
  Fmt.pr
    "totals: %d served, %d failed, %d shed, %d byte(s) ingested; flight \
     recorder %s@."
    (jint "served" d) (jint "failed" d) (jint "shed" d)
    (jint "bytes_ingested" d)
    (if jbool "flight_recorder" d then "on" else "off");
  Fmt.pr "latency: %d session(s) — p50 %.0fus  p95 %.0fus  p99 %.0fus@."
    (jint "count" l) (jfloat "p50" l) (jfloat "p95" l) (jfloat "p99" l);
  match Json.member "sessions" j with
  | Some (Json.List (_ :: _ as sessions)) ->
      Fmt.pr "@.  %-5s %-8s %-9s %8s %10s %10s  %s@." "id" "kind" "state"
        "age_s" "bytes" "queue" "flags";
      List.iter
        (fun s ->
          let flags =
            List.filter_map
              (fun (k, label) -> if jbool k s then Some label else None)
              [
                ("backpressure", "backpressure");
                ("stalled", "stalled");
                ("eof", "eof");
                ("timed_out", "timed-out");
                ("worker_owned", "in-worker");
              ]
          in
          Fmt.pr "  %-5d %-8s %-9s %8.1f %10d %10d  %s@." (jint "id" s)
            (jstr "kind" s) (jstr "state" s) (jfloat "age_s" s)
            (jint "bytes_ingested" s) (jint "queue_bytes" s)
            (String.concat "," flags))
        sessions
  | _ -> ()

let stat_run () socket prom json =
  let format =
    if prom then Sprotocol.Stats_prom else Sprotocol.Stats_json
  in
  match scrape ~format socket with
  | Error m ->
      Log.err "cannot scrape daemon: %s" m;
      exit exit_corrupt
  | Ok body ->
      if prom || json then print_string body
      else stat_print_human (parse_stats body)

let prom_flag =
  Arg.(
    value & flag
    & info [ "prom" ]
        ~doc:"Print the raw Prometheus text exposition instead of a summary.")

let json_flag =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:
          "Print the raw JSON status document ($(b,tfserve-stats/1)) \
           instead of a summary.")

let stat_cmd =
  Cmd.v
    (Cmd.info "stat"
       ~doc:
         "One-shot scrape of a running $(b,threadfuser serve) daemon's \
          admin socket ($(b,<socket>.stats)): live per-session state, \
          totals and latency quantiles.  $(b,--prom) and $(b,--json) emit \
          the raw exposition for scripts and scrapers.  Exit 2 when no \
          daemon answers.")
    Term.(const stat_run $ setup_term $ socket_arg $ prom_flag $ json_flag)

(* Poll loop over the JSON document: rates are deltas between consecutive
   scrapes, so a dashboardless terminal still sees ingest B/s and session
   throughput move. *)
let top_run () socket interval count =
  if interval <= 0.0 then begin
    Log.err "--interval must be positive";
    exit exit_usage
  end;
  let stop = ref false in
  let handle _ = stop := true in
  ignore (Sys.signal Sys.sigint (Sys.Signal_handle handle));
  ignore (Sys.signal Sys.sigterm (Sys.Signal_handle handle));
  let prev = ref None in
  let iter = ref 0 in
  while (not !stop) && (count = 0 || !iter < count) do
    (match scrape ~format:Sprotocol.Stats_json socket with
    | Error m ->
        Log.err "cannot scrape daemon: %s" m;
        exit exit_corrupt
    | Ok body ->
        let j = parse_stats body in
        let d = Option.value ~default:(Json.Obj []) (Json.member "daemon" j) in
        let l =
          Option.value ~default:(Json.Obj []) (Json.member "latency_us" j)
        in
        let done_n = jint "served" d + jint "failed" d in
        let bytes = jint "bytes_ingested" d in
        let shed = jint "shed" d in
        (match !prev with
        | None ->
            Fmt.pr "%-8s %8s %9s %12s %9s %9s %9s %9s@." "time" "active"
              "sess/s" "ingest-B/s" "shed/s" "p50-us" "p95-us" "p99-us"
        | Some (t0, done0, bytes0, shed0) ->
            let dt = Unix.gettimeofday () -. t0 in
            let dt = if dt <= 0.0 then interval else dt in
            Fmt.pr "%-8.1f %8d %9.2f %12.0f %9.2f %9.0f %9.0f %9.0f@."
              (jfloat "uptime_s" j) (jint "active" d)
              (float_of_int (done_n - done0) /. dt)
              (float_of_int (bytes - bytes0) /. dt)
              (float_of_int (shed - shed0) /. dt)
              (jfloat "p50" l) (jfloat "p95" l) (jfloat "p99" l));
        prev := Some (Unix.gettimeofday (), done_n, bytes, shed));
    incr iter;
    if (not !stop) && (count = 0 || !iter < count) then Unix.sleepf interval
  done

let top_cmd =
  let interval_arg =
    Arg.(
      value & opt float 2.0
      & info [ "interval" ] ~docv:"SECONDS"
          ~doc:"Seconds between scrapes.")
  in
  let count_arg =
    Arg.(
      value & opt int 0
      & info [ "count" ] ~docv:"N"
          ~doc:"Stop after this many scrapes (0 = until interrupted).")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Poll a running $(b,threadfuser serve) daemon's admin socket and \
          print a rolling rate line per scrape: active sessions, \
          sessions/s, ingest bytes/s, shed rate and session latency \
          quantiles.  The first scrape prints the header; rates are \
          deltas between consecutive scrapes.")
    Term.(const top_run $ setup_term $ socket_arg $ interval_arg $ count_arg)

let main =
  Cmd.group
    (Cmd.info "threadfuser" ~version:"1.0.0"
       ~doc:
         "A SIMT analysis framework for MIMD programs (reproduction of the \
          MICRO 2024 paper).")
    [
      list_cmd; analyze_cmd; sweep_cmd; trace_cmd; tracefile_cmd; cfg_cmd;
      disasm_cmd; asm_cmd; warptrace_cmd; replay_cmd; simulate_cmd;
      profile_cmd; correlate_cmd; check_cmd; fuzz_cmd; blame_cmd; diff_cmd;
      suite_cmd; cache_cmd; serve_cmd; client_cmd; stat_cmd; top_cmd;
    ]

(* Top-level error handler: uncaught-exception backtraces never reach the
   user; every failure mode maps to a structured log record and a distinct
   exit code (1 usage, 2 corrupt input, 3 analysis degraded).  These log at
   [Error], above every threshold except quiet. *)
let () =
  Log.init_from_env ();
  let code =
    try Cmd.eval ~catch:false main with
    | Serial.Corrupt m ->
        Log.err "corrupt trace input: %s" m;
        exit_corrupt
    | Threadfuser.Warp_serial.Corrupt m ->
        Log.err "corrupt warp-trace input: %s" m;
        exit_corrupt
    | Tf_error.Error d ->
        Log.err "%s" (Tf_error.to_string d);
        exit_degraded
    | Threadfuser.Emulator.Emulation_error m ->
        Log.err "trace/program mismatch: %s" m;
        exit_degraded
    | Invalid_argument m | Failure m ->
        Log.err "%s" m;
        exit_usage
    | Sys_error m ->
        Log.err "%s" m;
        exit_usage
  in
  exit (if code = Cmd.Exit.cli_error then exit_usage else code)
